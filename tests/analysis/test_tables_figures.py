"""Table rendering, figure series, CSV output."""

from repro.analysis.figures import Series, ascii_chart, series_csv
from repro.analysis.tables import NasTableRow, render_nas_table, rows_csv
from repro.analysis.tables import HttRow, render_htt_table


def make_rows():
    return [
        NasTableRow("A", 1, {0: 23.12, 1: 23.17, 2: 25.84},
                    paper=(23.12, 23.18, 25.66)),
        NasTableRow("A", 16, {0: 1.45, 1: 1.45, 2: 1.66},
                    paper=(1.46, 1.47, 2.04)),
        NasTableRow("C", 1, {0: None, 1: None, 2: None}, paper=None),
    ]


def test_row_delta_and_pct():
    r = make_rows()[0]
    assert r.delta(2) == 25.84 - 23.12
    assert r.pct(2) == 100 * (25.84 - 23.12) / 23.12
    assert r.paper_pct(2) == 100 * (25.66 - 23.12) / 23.12


def test_infeasible_row_yields_none():
    r = make_rows()[2]
    assert r.delta(2) is None and r.pct(2) is None and r.paper_pct(1) is None


def test_render_shows_dashes_for_blank_cells():
    text = render_nas_table("T", make_rows())
    assert "Table" not in text or True
    assert "-" in text.splitlines()[-1]  # the infeasible row renders dashes
    assert "23.12" in text
    assert "(23.12)" in text  # paper column


def test_rows_csv_parses():
    csv = rows_csv(make_rows())
    lines = csv.strip().splitlines()
    assert lines[0].startswith("cls,row,")
    assert len(lines) == 4
    assert lines[1].split(",")[0] == "A"


def test_htt_table_renders_deltas():
    rows = [
        HttRow("A", 1, {0: (5.87, 5.81), 1: (5.87, 5.81), 2: (6.47, 6.78)},
               paper={0: (5.87, 5.81), 2: (6.47, 6.78)}),
        HttRow("A", 16, {0: (0.37, 0.39), 2: (None, None)}),
    ]
    text = render_htt_table("T4", rows)
    assert "5.87" in text and "6.78" in text
    assert "ht0" in text


def test_series_and_csv():
    s1 = Series("a", [(1, 10.0), (2, 20.0)])
    s2 = Series("b")
    s2.add(2, 5.0)
    csv = series_csv([s1, s2], x_name="iv")
    lines = csv.strip().splitlines()
    assert lines[0] == "iv,a,b"
    assert lines[1] == "1,10,"
    assert lines[2] == "2,20,5"
    assert s1.xs() == [1.0, 2.0]


def test_ascii_chart_renders_all_series_marks():
    s1 = Series("one", [(0, 0.0), (10, 5.0)])
    s2 = Series("two", [(0, 5.0), (10, 0.0)])
    text = ascii_chart([s1, s2], title="demo", width=40, height=8)
    assert "demo" in text
    assert "1" in text and "2" in text
    assert "1=one" in text and "2=two" in text


def test_ascii_chart_empty():
    assert "empty" in ascii_chart([])


def test_ascii_chart_interior_tick_labels():
    s = Series("one", [(0, 0.0), (10, 8.0)])
    text = ascii_chart([s], width=40, height=9)
    # ends plus the quarter lines: 8, 6, 4, 2, 0
    for label in ("8 ┤", "6 ┤", "4 ┤", "2 ┤", "0 ┤"):
        assert label in text, f"missing y tick {label!r}"


def test_ascii_chart_shared_scale_clamps():
    lo = Series("lo", [(0, 0.0), (1, 1.0)])
    hi = Series("hi", [(0, 0.0), (1, 10.0)])
    # Shared y range across two charts: same header/footer labels.
    a = ascii_chart([lo], height=8, y_min=0.0, y_max=10.0)
    b = ascii_chart([hi], height=8, y_min=0.0, y_max=10.0)
    assert a.splitlines()[0].split("┤")[0] == b.splitlines()[0].split("┤")[0]
    # Points above the pinned range clamp to the top row, not crash.
    clipped = ascii_chart([hi], height=8, y_min=0.0, y_max=5.0)
    assert clipped.splitlines()[0].strip().startswith("5")
