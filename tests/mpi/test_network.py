"""Interconnect: α–β math, NIC serialization, SMM delivery gating."""

import pytest

from repro.mpi.cluster import Cluster, ClusterSpec
from repro.mpi.network import NetworkSpec, Nic


def test_spec_math():
    spec = NetworkSpec(latency_ns=100_000, bandwidth_bps=100e6)
    assert spec.wire_ns(100_000_000) == pytest.approx(1e9, rel=1e-6)  # 100MB at 100MB/s
    assert spec.memcpy_ns(3_000_000_000) == pytest.approx(1e9, rel=1e-6)


def test_spec_validation():
    with pytest.raises(ValueError):
        NetworkSpec(latency_ns=-1)
    with pytest.raises(ValueError):
        NetworkSpec(bandwidth_bps=0)


def test_nic_serializes_fifo():
    spec = NetworkSpec(bandwidth_bps=1e9)
    nic = Nic(spec)
    end1 = nic.occupy_tx(0, 1_000_000)  # 1 MB -> 1 ms
    end2 = nic.occupy_tx(0, 1_000_000)  # queued behind
    assert end1 == spec.wire_ns(1_000_000)
    assert end2 == 2 * end1
    # rx direction independent (full duplex)
    assert nic.occupy_rx(0, 1_000_000) == end1
    assert nic.busy_until() == end2


def test_transfer_alpha_beta_timing():
    c = Cluster(ClusterSpec(n_nodes=2))
    spec = c.network.spec
    arrived = []
    nbytes = 1_000_000
    c.network.transfer(c.nodes[0], c.nodes[1], nbytes, lambda: arrived.append(c.engine.now))
    c.engine.run()
    expect = 2 * spec.wire_ns(nbytes) + spec.latency_ns  # tx + alpha + rx
    assert arrived[0] == pytest.approx(expect, rel=1e-6)


def test_intra_node_bypasses_nic():
    c = Cluster(ClusterSpec(n_nodes=1))
    arrived = []
    c.network.transfer(c.nodes[0], c.nodes[0], 1_000_000, lambda: arrived.append(c.engine.now))
    c.engine.run()
    assert arrived[0] < c.network.spec.wire_ns(1_000_000)  # memcpy ≫ wire speed
    assert c.nodes[0].nic.tx_bytes == 0


def test_ranks_share_node_nic():
    """Two concurrent messages from one node serialize on its NIC."""
    c = Cluster(ClusterSpec(n_nodes=3))
    arrivals = {}
    n = 5_000_000
    c.network.transfer(c.nodes[0], c.nodes[1], n, lambda: arrivals.setdefault("a", c.engine.now))
    c.network.transfer(c.nodes[0], c.nodes[2], n, lambda: arrivals.setdefault("b", c.engine.now))
    c.engine.run()
    wire = c.network.spec.wire_ns(n)
    assert arrivals["b"] - arrivals["a"] == pytest.approx(wire, rel=1e-6)


def test_delivery_gated_by_destination_smm():
    """DMA lands during SMM, but host software sees the message at exit."""
    c = Cluster(ClusterSpec(n_nodes=2))
    seen = []
    dst = c.nodes[1]
    dst.smm.trigger(50_000_000)
    c.network.transfer(c.nodes[0], dst, 1000, lambda: seen.append(c.engine.now))
    c.engine.run()
    from repro.machine.smm import ENTRY_LATENCY_NS

    assert seen[0] == 50_000_000 + ENTRY_LATENCY_NS


def test_negative_size_rejected():
    c = Cluster(ClusterSpec(n_nodes=2))
    with pytest.raises(ValueError):
        c.network.transfer(c.nodes[0], c.nodes[1], -1, lambda: None)
