"""Cluster construction and the mpirun launcher."""

import pytest

from repro.core.smi import SmiProfile
from repro.machine.profile import COMPUTE_BOUND
from repro.mpi import Cluster, ClusterSpec, run_mpi_job


def test_cluster_builds_wired_nodes():
    c = Cluster(ClusterSpec(n_nodes=4))
    assert len(c.nodes) == 4
    for n in c.nodes:
        assert n.nic is not None
        assert n.scheduler is not None
    # MPI study default: HTT disabled on all nodes (§III.A).
    assert all(n.topology.n_online == 4 for n in c.nodes)


def test_htt_flag_onlines_siblings():
    c = Cluster(ClusterSpec(n_nodes=2, htt=True))
    assert all(n.topology.n_online == 8 for n in c.nodes)


def test_block_placement():
    c = Cluster(ClusterSpec(n_nodes=2))
    placements = []

    def app(rk):
        placements.append((rk.rank, rk.task.node.name))
        yield from rk.compute(1000.0)
        return None

    run_mpi_job(c, app, nranks=8, ranks_per_node=4, profile=COMPUTE_BOUND)
    by_rank = dict(placements)
    assert all(by_rank[r] == "node0" for r in range(4))
    assert all(by_rank[r] == "node1" for r in range(4, 8))


def test_too_many_ranks_rejected():
    c = Cluster(ClusterSpec(n_nodes=2))
    with pytest.raises(ValueError):
        run_mpi_job(c, lambda rk: iter(()), nranks=3, ranks_per_node=1)


def test_enable_smi_noop_for_smm0():
    c = Cluster(ClusterSpec(n_nodes=2))
    c.enable_smi(None)
    assert c.smi_sources == []


def test_enable_smi_attaches_one_source_per_node():
    c = Cluster(ClusterSpec(n_nodes=3))
    c.enable_smi(SmiProfile.SHORT, 1000, seed=1)
    assert len(c.smi_sources) == 3
    phases = {s.phase_ns for s in c.smi_sources}
    assert len(phases) == 3  # independent phases


def test_phase_spread_bounds_phases():
    c = Cluster(ClusterSpec(n_nodes=8))
    c.enable_smi(SmiProfile.LONG, 1000, seed=2, phase_spread_ns=100_000_000)
    assert all(s.phase_ns < 100_000_000 for s in c.smi_sources)


def test_job_result_fields():
    c = Cluster(ClusterSpec(n_nodes=2))

    def app(rk):
        yield from rk.barrier()
        t0 = rk.now_ns()
        yield from rk.compute(2.27e9 * 0.01)
        return {"elapsed_s": (rk.now_ns() - t0) / 1e9, "verified": True}

    res = run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    assert res.nranks == 2
    assert res.elapsed_s is not None and res.elapsed_s > 0
    assert res.wall_s >= res.elapsed_s
    assert res.stats["messages"] > 0  # the barrier communicated


def test_total_smm_time_accumulates():
    c = Cluster(ClusterSpec(n_nodes=2))
    c.enable_smi(SmiProfile.LONG, 100, seed=3)

    def app(rk):
        yield from rk.compute(2.27e9 * 0.3)
        return None

    run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    assert c.total_smm_time_s() > 0.1
