"""Collective algorithms: value correctness at assorted rank counts."""

import pytest

from repro.machine.profile import COMPUTE_BOUND
from repro.mpi import Cluster, ClusterSpec, run_mpi_job

SIZES = [1, 2, 3, 4, 5, 8, 16]


def run_app(app, nranks, ranks_per_node=1):
    n_nodes = (nranks + ranks_per_node - 1) // ranks_per_node
    c = Cluster(ClusterSpec(n_nodes=n_nodes))
    return run_mpi_job(c, app, nranks=nranks, ranks_per_node=ranks_per_node,
                       profile=COMPUTE_BOUND)


@pytest.mark.parametrize("p", SIZES)
def test_barrier_synchronizes(p):
    """No rank passes the barrier before the slowest arrives.

    NOTE: release times are read from the *engine* clock — per-node
    CLOCK_MONOTONIC values include boot offsets and are not comparable
    across nodes (deliberately, like real unsynchronized cluster clocks).
    """

    def app(rk):
        yield from rk.compute(2.27e9 * 0.001 * (rk.rank + 1))  # staggered arrivals
        yield from rk.barrier()
        return rk.task.node.engine.now

    res = run_app(app, p)
    release = res.rank_results
    # everyone released at/after the slowest rank's arrival time
    assert min(release) >= 0.001 * p * 1e9 * 0.9
    # and close together (within communication skew, not compute stagger)
    assert max(release) - min(release) < 0.15 * max(release)


@pytest.mark.parametrize("p", SIZES)
def test_bcast_delivers_root_value(p):
    def app(rk):
        v = yield from rk.bcast("payload" if rk.rank == 0 else None, root=0)
        return v

    res = run_app(app, p)
    assert res.rank_results == ["payload"] * p


@pytest.mark.parametrize("p", [2, 4, 7])
def test_bcast_nonzero_root(p):
    def app(rk):
        root = p - 1
        v = yield from rk.bcast(rk.rank if rk.rank == root else None, root=root)
        return v

    res = run_app(app, p)
    assert res.rank_results == [p - 1] * p


@pytest.mark.parametrize("p", SIZES)
def test_reduce_sums_to_root(p):
    def app(rk):
        v = yield from rk.reduce(rk.rank + 1, root=0)
        return v

    res = run_app(app, p)
    assert res.rank_results[0] == p * (p + 1) // 2
    assert all(v is None for v in res.rank_results[1:])


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_sum_everywhere(p):
    def app(rk):
        v = yield from rk.allreduce(rk.rank + 1)
        return v

    res = run_app(app, p)
    assert res.rank_results == [p * (p + 1) // 2] * p


@pytest.mark.parametrize("p", [4, 8])
def test_allreduce_custom_op(p):
    def app(rk):
        v = yield from rk.allreduce(rk.rank + 1, op=lambda a, b: max(a, b))
        return v

    res = run_app(app, p)
    assert res.rank_results == [p] * p


@pytest.mark.parametrize("p", [3, 5])
def test_allreduce_non_power_of_two_path(p):
    def app(rk):
        v = yield from rk.allreduce([rk.rank], op=lambda a, b: a + b)
        return sorted(v)

    res = run_app(app, p)
    assert res.rank_results == [list(range(p))] * p


@pytest.mark.parametrize("p", SIZES)
def test_allgather_collects_everything(p):
    def app(rk):
        out = yield from rk.allgather(f"r{rk.rank}")
        return out

    res = run_app(app, p)
    expect = [f"r{i}" for i in range(p)]
    assert res.rank_results == [expect] * p


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_alltoall_power_of_two(p):
    def app(rk):
        values = [f"{rk.rank}->{d}" for d in range(p)]
        out = yield from rk.alltoall(1024, values)
        return out

    res = run_app(app, p)
    for r, out in enumerate(res.rank_results):
        assert out == [f"{s}->{r}" for s in range(p)]


@pytest.mark.parametrize("p", [3, 6])
def test_alltoall_non_power_of_two(p):
    def app(rk):
        values = [(rk.rank, d) for d in range(p)]
        out = yield from rk.alltoall(64, values)
        return out

    res = run_app(app, p)
    for r, out in enumerate(res.rank_results):
        assert out == [(s, r) for s in range(p)]


def test_alltoall_values_length_checked():
    def app(rk):
        try:
            yield from rk.alltoall(8, values=[1])  # wrong length for p=2
        except ValueError:
            return "rejected"

    res = run_app(app, 2)
    assert res.rank_results[0] == "rejected"


def test_consecutive_collectives_do_not_cross_match():
    """Back-to-back collectives of the same type stay separated (per-call
    tags): a fast rank's round-2 traffic can't satisfy round 1."""

    def app(rk):
        a = yield from rk.allreduce(rk.rank)
        b = yield from rk.allreduce(rk.rank * 10)
        c = yield from rk.allreduce(rk.rank * 100)
        return (a, b, c)

    p = 4
    res = run_app(app, p)
    s = sum(range(p))
    assert res.rank_results == [(s, 10 * s, 100 * s)] * p


def test_collectives_under_smm_noise_still_correct():
    """Values survive arbitrary freeze interleavings (noise changes
    timing, never results)."""
    from repro.core.smi import SmiProfile

    c = Cluster(ClusterSpec(n_nodes=4))
    c.enable_smi(SmiProfile.LONG, 50, seed=5)

    def app(rk):
        total = yield from rk.allreduce(rk.rank + 1)
        gathered = yield from rk.allgather(rk.rank)
        out = yield from rk.alltoall(256, [rk.rank * 100 + d for d in range(rk.size)])
        return (total, gathered, out)

    res = run_mpi_job(c, app, nranks=4, profile=COMPUTE_BOUND)
    for r, (total, gathered, out) in enumerate(res.rank_results):
        assert total == 10
        assert gathered == [0, 1, 2, 3]
        assert out == [s * 100 + r for s in range(4)]
