"""How SMM freezes propagate through MPI wait chains.

These tests pin down the *mechanisms* behind the tables: a frozen sender
stalls its receiver; a frozen receiver stalls nothing until someone needs
its answer; overlapping freezes absorb; chains serialize.
"""

import pytest

from repro.core.smi import SmiProfile
from repro.machine.profile import COMPUTE_BOUND
from repro.machine.smm import ENTRY_LATENCY_NS
from repro.mpi import Cluster, ClusterSpec, run_mpi_job

WORK_10MS = 2.27e9 * 0.01


def test_frozen_sender_stalls_receiver():
    c = Cluster(ClusterSpec(n_nodes=2))
    # node0 freezes just before its rank would send
    c.engine.schedule(5_000_000, c.nodes[0].smm.trigger, 50_000_000)

    def app(rk):
        if rk.rank == 0:
            yield from rk.compute(COMPUTE_BOUND.solo_rate(2.27e9) * 0.01)
            yield from rk.send(1, 8, "late")
            return None
        t0 = rk.task.node.engine.now
        yield from rk.recv(0)
        return (rk.task.node.engine.now - t0) / 1e6  # ms

    res = run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    # receiver waited through the sender's ~55 ms freeze
    assert res.rank_results[1] > 55.0


def test_frozen_receiver_delays_only_delivery():
    """The wire keeps moving during the receiver's freeze (DMA); only
    visibility waits — total delay ≈ freeze end, not freeze + wire."""
    c = Cluster(ClusterSpec(n_nodes=2))
    c.engine.schedule(1_000_000, c.nodes[1].smm.trigger, 50_000_000)

    def app(rk):
        if rk.rank == 0:
            yield from rk.send(1, 1_000_000, "bulk")  # ~9 ms wire at 110 MB/s
            return None
        t0 = rk.task.node.engine.now
        yield from rk.recv(0)
        return (rk.task.node.engine.now - t0) / 1e6

    res = run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    recv_ms = res.rank_results[1]
    freeze_end = (1_000_000 + 50_000_000 + ENTRY_LATENCY_NS) / 1e6
    assert recv_ms == pytest.approx(freeze_end, rel=0.1)


def test_parallel_lanes_absorb_freezes_to_the_max():
    """Freezes hitting *independent* ranks absorb into the barrier max:
    whether the two nodes freeze together or at disjoint times, a
    compute+barrier job pays one 50 ms window — parallelism is the
    absorption mechanism (Ferreira et al. [24]); only serial dependence
    (the pipeline test below) makes staggered freezes add up."""

    def run(offsets):
        c = Cluster(ClusterSpec(n_nodes=2))
        for node, off in zip(c.nodes, offsets):
            c.engine.schedule(off, node.smm.trigger, 50_000_000)

        def app(rk):
            yield from rk.compute(2.27e9 * 0.2)
            yield from rk.barrier()
            return None

        res = run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
        return res.wall_s

    aligned = run([10_000_000, 10_000_000])
    disjoint = run([10_000_000, 100_000_000])
    clean_ref = run([10_000_000_000, 10_000_000_000])  # after completion
    assert aligned - clean_ref == pytest.approx(0.05, rel=0.15)
    assert disjoint - clean_ref == pytest.approx(0.05, rel=0.15)


def test_pipeline_chain_serializes_staggered_freezes():
    """A 4-stage send chain: staggered freezes on consecutive nodes add
    up in the end-to-end latency (the BT sweep mechanism)."""

    def run(freeze: bool) -> float:
        c = Cluster(ClusterSpec(n_nodes=4))
        if freeze:
            for i, node in enumerate(c.nodes):
                c.engine.schedule(5_000_000 + i * 60_000_000,
                                  node.smm.trigger, 50_000_000)

        def app(rk):
            if rk.rank == 0:
                yield from rk.compute(WORK_10MS)
                yield from rk.send(1, 8, 0)
            else:
                yield from rk.recv(rk.rank - 1)
                yield from rk.compute(WORK_10MS)
                if rk.rank < 3:
                    yield from rk.send(rk.rank + 1, 8, rk.rank)
            return None

        res = run_mpi_job(c, app, nranks=4, profile=COMPUTE_BOUND)
        return res.wall_s

    clean = run(False)
    noisy = run(True)
    # each hop eats (part of) a staggered 50 ms freeze: ≥ 2.5 windows total
    assert noisy - clean > 0.125


def test_noise_does_not_reorder_messages():
    """Freezes may delay but can never reorder a (src,dst,tag) stream."""
    c = Cluster(ClusterSpec(n_nodes=2), seed=5)
    c.enable_smi(SmiProfile.LONG, 100, seed=5)

    def app(rk):
        if rk.rank == 0:
            for i in range(20):
                yield from rk.send(1, 1024, i)
                yield from rk.compute(2.27e9 * 0.005)
            return None
        got = []
        for _ in range(20):
            m = yield from rk.recv(0)
            got.append(m.payload)
        return got

    res = run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    assert res.rank_results[1] == list(range(20))
