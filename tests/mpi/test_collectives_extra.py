"""The extended collective set: scatter/gather/reduce_scatter/scan."""

import pytest

from repro.machine.profile import COMPUTE_BOUND
from repro.mpi import Cluster, ClusterSpec, run_mpi_job


def run_app(app, nranks):
    c = Cluster(ClusterSpec(n_nodes=nranks))
    return run_mpi_job(c, app, nranks=nranks, ranks_per_node=1,
                       profile=COMPUTE_BOUND)


@pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
def test_scatter_distributes_blocks(p):
    def app(rk):
        values = [f"blk{i}" for i in range(p)] if rk.rank == 0 else None
        mine = yield from rk.scatter(values, root=0)
        return mine

    res = run_app(app, p)
    assert res.rank_results == [f"blk{i}" for i in range(p)]


def test_scatter_root_validates_length():
    def app(rk):
        if rk.rank == 0:
            try:
                yield from rk.scatter([1], root=0)  # wrong length at p=2
            except ValueError:
                return "rejected"
            return "?"
        # non-root skips the collective: the root rejected before sending
        yield from rk.compute(1000.0)
        return "skipped"

    res = run_app(app, 2)
    assert res.rank_results == ["rejected", "skipped"]


@pytest.mark.parametrize("p", [1, 2, 5, 8])
def test_gather_collects_to_root(p):
    def app(rk):
        out = yield from rk.gather(rk.rank * 2, root=0)
        return out

    res = run_app(app, p)
    assert res.rank_results[0] == [2 * i for i in range(p)]
    assert all(v is None for v in res.rank_results[1:])


@pytest.mark.parametrize("p", [1, 2, 4, 6])
def test_reduce_scatter_elementwise(p):
    def app(rk):
        values = [rk.rank + 10 * i for i in range(p)]  # column i sums known
        mine = yield from rk.reduce_scatter(values)
        return mine

    res = run_app(app, p)
    ranks_sum = p * (p - 1) // 2
    for i, got in enumerate(res.rank_results):
        assert got == ranks_sum + 10 * i * p


@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_scan_inclusive_prefix(p):
    def app(rk):
        v = yield from rk.scan(rk.rank + 1)
        return v

    res = run_app(app, p)
    assert res.rank_results == [sum(range(1, i + 2)) for i in range(p)]


def test_scan_custom_op():
    def app(rk):
        v = yield from rk.scan(rk.rank + 1, op=lambda a, b: a * b)
        return v

    res = run_app(app, 4)
    assert res.rank_results == [1, 2, 6, 24]
