"""Point-to-point semantics: matching, wildcards, ordering, requests."""

import pytest

from repro.machine.profile import COMPUTE_BOUND
from repro.mpi import ANY_SOURCE, ANY_TAG, Cluster, ClusterSpec, run_mpi_job


def run_app(app, nranks=2, ranks_per_node=1, n_nodes=None):
    c = Cluster(ClusterSpec(n_nodes=n_nodes or nranks))
    return run_mpi_job(c, app, nranks=nranks, ranks_per_node=ranks_per_node,
                       profile=COMPUTE_BOUND)


def test_send_recv_payload():
    def app(rk):
        if rk.rank == 0:
            yield from rk.send(1, 64, {"a": 7}, tag=11)
            return "sent"
        msg = yield from rk.recv(0, tag=11)
        return msg.payload

    res = run_app(app)
    assert res.rank_results == ["sent", {"a": 7}]


def test_recv_blocks_until_message():
    def app(rk):
        if rk.rank == 0:
            yield from rk.compute(2.27e9 * 0.05)  # ~50 ms before sending
            yield from rk.send(1, 8, "late")
            return 0.0
        t0 = rk.now_ns()
        yield from rk.recv(0)
        return (rk.now_ns() - t0) / 1e9

    res = run_app(app)
    assert res.rank_results[1] > 0.04


def test_tag_matching_selects_correct_message():
    def app(rk):
        if rk.rank == 0:
            yield from rk.send(1, 8, "first", tag=1)
            yield from rk.send(1, 8, "second", tag=2)
            return None
        m2 = yield from rk.recv(0, tag=2)
        m1 = yield from rk.recv(0, tag=1)
        return (m1.payload, m2.payload)

    res = run_app(app)
    assert res.rank_results[1] == ("first", "second")


def test_any_source_and_any_tag():
    def app(rk):
        if rk.rank == 2:
            got = []
            for _ in range(2):
                m = yield from rk.recv(ANY_SOURCE, ANY_TAG)
                got.append((m.src, m.payload))
            return sorted(got)
        yield from rk.send(2, 8, f"from{rk.rank}", tag=rk.rank)
        return None

    res = run_app(app, nranks=3)
    assert res.rank_results[2] == [(0, "from0"), (1, "from1")]


def test_non_overtaking_same_src_same_tag():
    def app(rk):
        if rk.rank == 0:
            for i in range(5):
                yield from rk.send(1, 8, i, tag=0)
            return None
        got = []
        for _ in range(5):
            m = yield from rk.recv(0, tag=0)
            got.append(m.payload)
        return got

    res = run_app(app)
    assert res.rank_results[1] == [0, 1, 2, 3, 4]


def test_irecv_then_wait():
    def app(rk):
        if rk.rank == 0:
            req = rk.irecv(1, tag=5)
            assert not req.complete
            yield from rk.send(1, 8, "ping", tag=4)
            msg = yield from rk.wait(req)
            return msg.payload
        yield from rk.recv(0, tag=4)
        yield from rk.send(0, 8, "pong", tag=5)
        return None

    res = run_app(app)
    assert res.rank_results[0] == "pong"


def test_sendrecv_exchanges_without_deadlock():
    def app(rk):
        partner = 1 - rk.rank
        m = yield from rk.sendrecv(partner, 1024, f"r{rk.rank}",
                                   src=partner, send_tag=3, recv_tag=3)
        return m.payload

    res = run_app(app)
    assert res.rank_results == ["r1", "r0"]


def test_bad_destination_rejected():
    def app(rk):
        try:
            yield from rk.send(99, 8)
        except ValueError:
            return "rejected"

    res = run_app(app)
    assert res.rank_results[0] == "rejected"


def test_message_counters():
    def app(rk):
        if rk.rank == 0:
            yield from rk.send(1, 100)
            yield from rk.send(1, 200)
            return (rk.sent_messages, rk.sent_bytes)
        yield from rk.recv(0)
        yield from rk.recv(0)
        return rk.recv_messages

    res = run_app(app)
    assert res.rank_results == [(2, 300), 2]


def test_unmatched_recv_deadlocks_cleanly():
    c = Cluster(ClusterSpec(n_nodes=2))

    def app(rk):
        if rk.rank == 1:
            yield from rk.recv(0, tag=42)  # never sent
        else:
            yield from rk.compute(1000.0)
        return None

    with pytest.raises(RuntimeError, match="did not finish"):
        run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND, limit_s=1.0)
