"""Suite-wide isolation for process-global state.

The shared-baseline memo (``repro.obs.attr.baseline.global_store``) is
process-global by design — a sweep worker absorbs records once and every
attribution cell in the process reuses them.  Tests, though, must not
see each other's baselines: a leaked hit silently skips the zero-SMI
replay and changes capture counts and metrics.  Reset the store around
every test (cheaply, via ``sys.modules`` so tests that never touch
attribution never import it).
"""

import sys

import pytest


@pytest.fixture(autouse=True)
def _fresh_baseline_store():
    mod = sys.modules.get("repro.obs.attr.baseline")
    if mod is not None:
        mod.reset_global_store()
    yield
    mod = sys.modules.get("repro.obs.attr.baseline")
    if mod is not None:
        mod.reset_global_store()


@pytest.fixture(autouse=True)
def _fresh_snapshot_store():
    # Same isolation for the warm-prefix store (repro.runx.forkshare):
    # a leaked warm prefix would serve one test's simulation to another.
    mod = sys.modules.get("repro.runx.forkshare")
    if mod is not None:
        mod.reset_global_store()
    yield
    mod = sys.modules.get("repro.runx.forkshare")
    if mod is not None:
        mod.reset_global_store()
