"""Cache contention model: solo-anchoring, monotonicity, domains."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import (
    CacheHierarchy,
    CacheSpec,
    nehalem_hierarchy,
    paper_r410_hierarchy,
    pressure_miss_rate,
)
from repro.machine.profile import WorkloadProfile


def prof(ws, miss=0.01, sens=1.0):
    return WorkloadProfile(
        name="t", working_set_bytes=ws, base_miss_rate=miss,
        mem_ref_fraction=0.3, cache_sensitivity=sens,
    )


def test_pressure_below_one_keeps_base():
    assert pressure_miss_rate(0.05, 0.5) == 0.05
    assert pressure_miss_rate(0.05, 1.0) == 0.05


def test_pressure_inflates_toward_one():
    assert pressure_miss_rate(0.05, 2.0) == pytest.approx(0.05 + 0.95 * 0.5)
    assert pressure_miss_rate(0.05, 1e9) == pytest.approx(1.0, abs=1e-6)


def test_solo_task_has_zero_extras():
    """base_miss_rate is the solo behaviour — alone, no contention deltas,
    even for a working set far larger than every cache."""
    h = nehalem_hierarchy()
    p = prof(1 << 30)  # 1 GiB streaming
    extra_dram, extra_mid = h.contention(p, [p], [p])
    assert extra_dram == 0.0
    assert extra_mid == 0.0
    assert h.efficiency(p, [p], [p]) == pytest.approx(p.efficiency())


def test_core_sharing_inflates_mid_not_dram():
    """Two tasks that together bust L2 but fit LLC pay mid-latency only."""
    h = nehalem_hierarchy()  # L2 256 KB core, L3 8 MB socket
    p = prof(200 << 10)  # fits L2 alone; two of them: 400 KB > 256 KB
    extra_dram, extra_mid = h.contention(p, [p, p], [p, p])
    assert extra_mid > 0.0
    assert extra_dram == 0.0


def test_llc_sharing_inflates_dram():
    h = nehalem_hierarchy()
    p = prof(6 << 20)  # fits the 8 MB LLC alone; two do not
    extra_dram, _ = h.contention(p, [p], [p, p])
    assert extra_dram > 0.0


def test_sensitivity_scales_extras():
    h = nehalem_hierarchy()
    full = prof(6 << 20, sens=1.0)
    damped = prof(6 << 20, sens=0.25)
    ed_full, _ = h.contention(full, [full], [full, full])
    ed_damp, _ = h.contention(damped, [damped], [damped, damped])
    assert ed_damp == pytest.approx(0.25 * ed_full)


def test_paper_convolve_miss_rates_reproduced():
    """The CF/CU profiles must land at the paper's cachegrind numbers."""
    from repro.apps.convolve import CACHE_FRIENDLY, CACHE_UNFRIENDLY

    assert CACHE_FRIENDLY.profile.base_miss_rate == pytest.approx(0.01)
    assert CACHE_UNFRIENDLY.profile.base_miss_rate == pytest.approx(0.70)


def test_hierarchy_requires_socket_level():
    with pytest.raises(ValueError):
        CacheHierarchy([CacheSpec("L1", 32 << 10, "core")])


def test_bad_specs_rejected():
    with pytest.raises(ValueError):
        CacheSpec("L1", 0, "core")
    with pytest.raises(ValueError):
        CacheSpec("L1", 1024, "l4")


def test_r410_paper_hierarchy_sizes():
    h = paper_r410_hierarchy()
    assert [lv.size_bytes for lv in h.levels] == [4 << 20, 8 << 20, 24 << 20]


@settings(max_examples=50, deadline=None)
@given(
    own=st.integers(min_value=1 << 10, max_value=64 << 20),
    others=st.lists(st.integers(min_value=1 << 10, max_value=64 << 20), max_size=6),
)
def test_more_coresidents_never_helps(own, others):
    """Monotonicity: adding a co-resident can only raise contention."""
    h = nehalem_hierarchy()
    me = prof(own)
    peers = [prof(w) for w in others]
    base_eff = h.efficiency(me, [me] + peers, [me] + peers)
    bigger = peers + [prof(8 << 20)]
    new_eff = h.efficiency(me, [me] + bigger, [me] + bigger)
    assert new_eff <= base_eff + 1e-12
