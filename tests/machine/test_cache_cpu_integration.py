"""Cache model × CPU model end-to-end: contention reaches wall time."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

# Two tasks that each fit the 8 MB LLC alone but not together, with full
# cache sensitivity and HTT yield 2 (to isolate the cache effect from the
# SMT coupling when co-resident on siblings).
HEAVY = WorkloadProfile(
    name="llc-heavy", htt_yield=2.0, working_set_bytes=6 << 20,
    base_miss_rate=0.02, mem_ref_fraction=0.3, cache_sensitivity=1.0,
)
LIGHT = HEAVY.with_(working_set_bytes=64 << 10)


def run_pair(profile_a, profile_b, cpus=(0, 1)):
    m = make_machine(WYEAST_SPEC)
    work = profile_a.solo_rate(WYEAST_SPEC.base_hz) * 0.1

    def body(task):
        yield from task.compute(work)
        return task.finished_ns

    a = m.scheduler.spawn(body, "a", profile_a, affinity={cpus[0]})
    b = m.scheduler.spawn(body, "b", profile_b, affinity={cpus[1]})
    m.engine.run()
    return a.finished_ns / 1e9, b.finished_ns / 1e9


def test_llc_contention_slows_both():
    """Two LLC-filling tasks on different cores slow each other through
    the shared L3 — §II.B's 'two cache-friendly threads can compete'."""
    t_heavy, _ = run_pair(HEAVY, HEAVY)
    t_alone = 0.1  # solo-calibrated
    assert t_heavy > t_alone * 1.2


def test_light_coresident_is_harmless():
    t_heavy, t_light = run_pair(HEAVY, LIGHT)
    assert t_heavy == pytest.approx(0.1, rel=0.05)


def test_contention_releases_when_partner_finishes():
    """A short LLC-heavy partner slows the victim only while present."""
    m = make_machine(WYEAST_SPEC)
    work_long = HEAVY.solo_rate(WYEAST_SPEC.base_hz) * 0.2
    work_short = HEAVY.solo_rate(WYEAST_SPEC.base_hz) * 0.02

    def body(w):
        def inner(task):
            yield from task.compute(w)
            return task.finished_ns

        return inner

    long_t = m.scheduler.spawn(body(work_long), "long", HEAVY, affinity={0})
    short_t = m.scheduler.spawn(body(work_short), "short", HEAVY, affinity={1})
    m.engine.run()
    t_long = long_t.finished_ns / 1e9
    # slowed only during the partner's window: well under full-contention
    both_full, _ = run_pair(HEAVY, HEAVY)
    assert 0.2 < t_long < 0.2 * (both_full / 0.1)


def test_sensitivity_zero_ignores_contention():
    numb = HEAVY.with_(cache_sensitivity=0.0)
    t, _ = run_pair(numb, numb)
    assert t == pytest.approx(0.1, rel=0.02)
