"""CPU execution: timing exactness, processor sharing, HTT coupling."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import R410_SPEC, WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0,
                      htt_yield=1.0, working_set_bytes=1024)
REG_HTT = REG.with_(htt_yield=1.5)


def run_workers(machine, n, work, profile, affinity=None):
    tasks = []

    def body(task):
        yield from task.compute(work)
        return task.now_ns()

    for i in range(n):
        tasks.append(machine.scheduler.spawn(body, f"w{i}", profile, affinity))
    machine.engine.run()
    return tasks


def test_single_task_exact_time():
    m = make_machine(WYEAST_SPEC)
    work = WYEAST_SPEC.base_hz * 0.5  # half a second at efficiency 1
    (t,) = run_workers(m, 1, work, REG)
    assert t.finished_ns / 1e9 == pytest.approx(0.5, rel=1e-6)


def test_two_tasks_one_cpu_processor_sharing():
    m = make_machine(WYEAST_SPEC)
    work = WYEAST_SPEC.base_hz * 0.1
    # pin both to cpu0: each gets half the rate -> both finish at 0.2 s
    tasks = run_workers(m, 2, work, REG, affinity={0})
    for t in tasks:
        assert t.finished_ns / 1e9 == pytest.approx(0.2, rel=1e-4)


def test_tasks_spread_to_distinct_physical_cores():
    m = make_machine(R410_SPEC)
    work = R410_SPEC.base_hz * 0.05
    tasks = run_workers(m, 4, work, REG)
    # 4 tasks on 4 physical cores: all at full speed, no HTT penalty.
    for t in tasks:
        assert t.finished_ns / 1e9 == pytest.approx(0.05, rel=1e-4)


def test_htt_yield_one_halves_sibling_throughput():
    m = make_machine(R410_SPEC)
    work = R410_SPEC.base_hz * 0.1
    # pin two tasks to the two siblings of core0 (cpus 0 and 4)
    tasks = []

    def body(task):
        yield from task.compute(work)
        return task.now_ns()

    tasks.append(m.scheduler.spawn(body, "a", REG, affinity={0}))
    tasks.append(m.scheduler.spawn(body, "b", REG, affinity={4}))
    m.engine.run()
    # htt_yield=1.0: the pair delivers 1 core's worth; each runs at 0.5.
    for t in tasks:
        assert t.finished_ns / 1e9 == pytest.approx(0.2, rel=1e-4)


def test_htt_yield_above_one_beats_sharing():
    m = make_machine(R410_SPEC)
    work = R410_SPEC.base_hz * 0.1

    def body(task):
        yield from task.compute(work)
        return task.now_ns()

    a = m.scheduler.spawn(body, "a", REG_HTT, affinity={0})
    b = m.scheduler.spawn(body, "b", REG_HTT, affinity={4})
    m.engine.run()
    # yield 1.5: each sibling runs at 0.75 -> 0.1/0.75 s.
    expect = 0.1 / 0.75
    assert a.finished_ns / 1e9 == pytest.approx(expect, rel=1e-4)
    assert b.finished_ns / 1e9 == pytest.approx(expect, rel=1e-4)


def test_mixed_yield_uses_mean_of_task_mix():
    m = make_machine(R410_SPEC)
    work = R410_SPEC.base_hz * 0.1

    def body(task):
        yield from task.compute(work)

    a = m.scheduler.spawn(body, "a", REG, affinity={0})          # yield 1.0
    b = m.scheduler.spawn(body, "b", REG_HTT, affinity={4})      # yield 1.5
    m.engine.run()
    # mean yield 1.25 -> each sibling at 0.625
    expect = 0.1 / 0.625
    assert a.finished_ns / 1e9 == pytest.approx(expect, rel=1e-4)


def test_smm_freeze_stops_all_cpus():
    """An SMI freezes every logical CPU simultaneously (§II.A)."""
    m = make_machine(R410_SPEC)
    work = R410_SPEC.base_hz * 0.1
    tasks = []

    def body(task):
        yield from task.compute(work)
        return task.now_ns()

    for i, cpu in enumerate((0, 1, 2, 3)):
        tasks.append(m.scheduler.spawn(body, f"w{i}", REG, affinity={cpu}))
    m.engine.schedule(50_000_000, m.node.smm.trigger, 30_000_000)
    m.engine.run()
    for t in tasks:
        # 0.1 s of work + 30 ms freeze (+ entry latency)
        assert t.finished_ns / 1e9 == pytest.approx(0.13, rel=1e-2)


def test_gross_hz_zero_when_offline_or_idle():
    m = make_machine(R410_SPEC)
    cpu = m.node.cpu(1)
    assert cpu.gross_hz() == 0.0  # idle
    m.node.topology.set_online(1, False)
    assert cpu.gross_hz() == 0.0


def test_placing_work_on_offline_cpu_rejected():
    m = make_machine(R410_SPEC)
    m.node.topology.set_online(5, False)
    from repro.simx.rate import WorkItem

    item = WorkItem(m.engine, 100.0, meta=None)
    with pytest.raises(RuntimeError):
        m.node.cpu(5).add_segment(item)
