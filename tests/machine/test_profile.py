"""WorkloadProfile validation and cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.profile import (
    COMPUTE_BOUND,
    MEMORY_BOUND,
    OS_INTENSIVE,
    WorkloadProfile,
)


def test_defaults_valid():
    p = WorkloadProfile(name="x")
    assert 0 < p.htt_yield <= 2


@pytest.mark.parametrize(
    "kw",
    [
        {"htt_yield": 0.0},
        {"htt_yield": 2.5},
        {"base_miss_rate": -0.1},
        {"base_miss_rate": 1.5},
        {"mem_ref_fraction": 2.0},
        {"working_set_bytes": -1},
        {"miss_penalty_ops": -1.0},
        {"cache_sensitivity": 1.5},
    ],
)
def test_validation_rejects_bad_fields(kw):
    with pytest.raises(ValueError):
        WorkloadProfile(name="bad", **kw)


def test_pure_register_workload_costs_exactly_one():
    p = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)
    assert p.cost_per_op() == 1.0
    assert p.efficiency() == 1.0


def test_cost_increases_with_miss_rate():
    lo = WorkloadProfile(name="lo", base_miss_rate=0.01, mem_ref_fraction=0.3)
    hi = WorkloadProfile(name="hi", base_miss_rate=0.7, mem_ref_fraction=0.3)
    assert hi.cost_per_op() > lo.cost_per_op()


def test_extras_monotone():
    p = COMPUTE_BOUND
    base = p.cost_per_op()
    assert p.cost_per_op(extra_dram=0.1) > base
    assert p.cost_per_op(extra_mid=0.5) > base
    assert p.cost_per_op(0.1, 0.5) > p.cost_per_op(0.1, 0.0)


def test_dram_miss_saturates_at_one():
    p = WorkloadProfile(name="x", base_miss_rate=0.9, mem_ref_fraction=0.5)
    # extra beyond saturation changes nothing
    assert p.cost_per_op(extra_dram=0.5) == p.cost_per_op(extra_dram=0.2)


def test_solo_rate_scales_with_hz():
    p = COMPUTE_BOUND
    assert p.solo_rate(2e9) == pytest.approx(2 * p.solo_rate(1e9))
    assert p.solo_rate(2.27e9) < 2.27e9  # efficiency < 1 with memory refs


def test_with_returns_modified_copy():
    p = COMPUTE_BOUND.with_(htt_yield=1.5)
    assert p.htt_yield == 1.5
    assert COMPUTE_BOUND.htt_yield == 1.0
    assert p.name == COMPUTE_BOUND.name


def test_canonical_profiles_encode_paper_taxonomy():
    # FP-intensive gains nothing from HTT (Leng et al. [4]).
    assert COMPUTE_BOUND.htt_yield == 1.0
    # Memory-bound thrashers gain little (the paper's CU convolve).
    assert MEMORY_BOUND.htt_yield < 1.2
    # OS/syscall mixes gain visibly (UnixBench's HTT benefit).
    assert OS_INTENSIVE.htt_yield > 1.2
    assert MEMORY_BOUND.base_miss_rate > 0.5


@settings(max_examples=50, deadline=None)
@given(
    miss=st.floats(min_value=0, max_value=1),
    mem=st.floats(min_value=0, max_value=1),
    ed=st.floats(min_value=0, max_value=1),
    em=st.floats(min_value=0, max_value=1),
)
def test_efficiency_always_in_unit_interval(miss, mem, ed, em):
    p = WorkloadProfile(name="p", base_miss_rate=miss, mem_ref_fraction=mem)
    eff = p.efficiency(ed, em)
    assert 0.0 < eff <= 1.0
