"""MSR interface: the OS-visible SMI count."""

import pytest

from repro.machine.msr import IA32_TIME_STAMP_COUNTER, MSR_SMI_COUNT, Msr
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine


def test_smi_count_tracks_entries():
    m = make_machine(WYEAST_SPEC)
    msr = Msr(m.node)
    assert msr.smi_count() == 0
    for _ in range(3):
        m.node.smm.trigger(1_000_000)
        m.engine.run()
    assert msr.smi_count() == 3


def test_tsc_msr_reads_clock():
    m = make_machine(WYEAST_SPEC)
    msr = Msr(m.node)
    m.engine.schedule(1_000_000_000, lambda: None)
    m.engine.run()
    assert msr.rdmsr(IA32_TIME_STAMP_COUNTER) == m.node.clock.rdtsc()


def test_unknown_msr_faults():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        Msr(m.node).rdmsr(0xDEAD)


def test_rdmsr_impossible_during_smm():
    """Host software cannot execute during SMM — reading the count from
    inside the freeze is a modeling error, not a measurement."""
    m = make_machine(WYEAST_SPEC)
    msr = Msr(m.node)
    m.node.smm.trigger(10_000_000)
    with pytest.raises(RuntimeError):
        msr.rdmsr(MSR_SMI_COUNT)
    m.engine.run()
    assert msr.smi_count() == 1


def test_count_is_the_only_visibility():
    """The MSR exposes how MANY SMIs occurred, never how LONG — pairing
    it with wall-clock gaps is exactly how real tools estimate SMM time
    (and how the detector cross-checks)."""
    from repro.core.detector import GapDetector
    from repro.core.smi import SmiProfile, SmiSource

    m = make_machine(WYEAST_SPEC, seed=2)
    msr = Msr(m.node)
    SmiSource(m.node, SmiProfile.LONG, 400, seed=2)
    det = GapDetector(m.node)
    proc = m.engine.process(det.run(int(1.5e9)), name="det", gate=m.node)
    m.engine.run_until(proc.done_event)
    count = msr.smi_count()
    assert count >= 3
    assert det.report.detected == count
    # time per SMI from gaps/count lands in the configured class
    mean_ns = det.report.total_gap_ns / count
    assert 95e6 < mean_ns < 120e6
