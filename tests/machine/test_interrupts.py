"""Interrupt controller: priority, masking, SMM deferral."""

import pytest

from repro.machine.interrupts import IrqClass
from repro.machine.smm import ENTRY_LATENCY_NS
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine


def test_device_irq_delivers_promptly_when_running():
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.irq.register(7, lambda rec, payload: seen.append((m.engine.now, payload)))
    m.engine.schedule(100, m.node.irq.raise_irq, IrqClass.DEVICE, 7, "pkt")
    m.engine.run()
    assert seen == [(100, "pkt")]
    assert m.node.irq.max_delivery_latency_ns() == 0


def test_irq_during_smm_deferred_to_exit():
    """§II.A: 'other device interrupts will only be handled after [SMM]
    has finished its work'."""
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.irq.register(7, lambda rec, _p: seen.append(m.engine.now))
    m.node.smm.trigger(10_000_000)
    m.engine.schedule(2_000_000, m.node.irq.raise_irq, IrqClass.DEVICE, 7)
    m.engine.run()
    exit_t = 10_000_000 + ENTRY_LATENCY_NS
    assert seen == [exit_t]
    assert m.node.irq.deferred_by_smm == 1
    assert m.node.irq.max_delivery_latency_ns(IrqClass.DEVICE) == exit_t - 2_000_000


def test_nmi_also_blocked_by_smm():
    """SMIs outrank NMIs — even 'non-maskable' interrupts wait."""
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.irq.register(2, lambda rec, _p: seen.append(m.engine.now))
    m.node.smm.trigger(5_000_000)
    m.engine.schedule(1_000_000, m.node.irq.raise_irq, IrqClass.NMI, 2)
    m.engine.run()
    assert seen == [5_000_000 + ENTRY_LATENCY_NS]


def test_smi_via_controller_enters_smm_immediately():
    m = make_machine(WYEAST_SPEC)
    m.node.irq.raise_irq(IrqClass.SMI, 0, smi_duration_ns=1_000_000)
    assert m.node.frozen
    m.engine.run()
    assert m.node.smm.stats.entries == 1


def test_smi_requires_duration():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        m.node.irq.raise_irq(IrqClass.SMI, 0)


def test_masking_holds_and_unmask_flushes():
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.irq.register(9, lambda rec, p: seen.append((m.engine.now, p)))
    m.node.irq.mask(9)
    m.engine.schedule(10, m.node.irq.raise_irq, IrqClass.DEVICE, 9, "held")
    m.engine.schedule(500, m.node.irq.unmask, 9)
    m.engine.run()
    assert seen == [(500, "held")]


def test_nmi_ignores_masks():
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.irq.register(2, lambda rec, _p: seen.append(m.engine.now))
    m.node.irq.mask(2)  # masking an NMI vector has no effect
    m.engine.schedule(10, m.node.irq.raise_irq, IrqClass.NMI, 2)
    m.engine.run()
    assert seen == [10]


def test_priority_ordering_constant():
    assert IrqClass.SMI < IrqClass.NMI < IrqClass.TIMER < IrqClass.DEVICE


def test_history_records_latency():
    m = make_machine(WYEAST_SPEC)
    m.node.irq.register(7, lambda rec, _p: None)
    m.node.smm.trigger(3_000_000)
    m.engine.schedule(1_000_000, m.node.irq.raise_irq, IrqClass.DEVICE, 7)
    m.engine.run()
    rec = [r for r in m.node.irq.history if r.irq_class is IrqClass.DEVICE][0]
    assert rec.latency_ns == (3_000_000 + ENTRY_LATENCY_NS) - 1_000_000
