"""Clock sources: free-running behaviour, jiffies, TSC conversions."""

import pytest

from repro.machine.clock import Clock, JIFFY_NS
from repro.simx import Engine


def test_jiffy_is_one_millisecond():
    """§III.B: 'In our system, one jiffy equals one millisecond.'"""
    assert JIFFY_NS == 1_000_000


def test_monotonic_follows_engine():
    eng = Engine()
    clk = Clock(eng)
    assert clk.monotonic_ns() == 0
    eng.schedule(5_000_000, lambda: None)
    eng.run()
    assert clk.monotonic_ns() == 5_000_000
    assert clk.jiffies() == 5
    assert clk.seconds() == pytest.approx(0.005)


def test_boot_offset_differs_between_nodes():
    eng = Engine()
    a = Clock(eng, boot_offset_ns=0)
    b = Clock(eng, boot_offset_ns=1_000)
    assert b.monotonic_ns() - a.monotonic_ns() == 1_000


def test_tsc_frequency_and_conversion_roundtrip():
    eng = Engine()
    clk = Clock(eng, tsc_hz=2.27e9)
    eng.schedule(1_000_000_000, lambda: None)  # 1 s
    eng.run()
    assert clk.rdtsc() == pytest.approx(2.27e9, rel=1e-9)
    assert clk.tsc_to_ns(clk.rdtsc()) == pytest.approx(1e9, rel=1e-6)


def test_clock_ticks_during_smm():
    """The defining invisibility property: a task reading the clock
    around an SMI sees the full gap (time flowed while nothing ran)."""
    from repro.machine.topology import WYEAST_SPEC
    from repro.system import make_machine
    from repro.machine.profile import COMPUTE_BOUND

    m = make_machine(WYEAST_SPEC)
    reads = []

    def body(task):
        reads.append(task.now_ns())
        yield from task.sleep(10_000_000)  # wakes during/after the SMI
        reads.append(task.now_ns())

    m.scheduler.spawn(body, "reader", COMPUTE_BOUND)
    # SMI at 5 ms for 50 ms: the 10 ms sleep expiry defers to SMM exit.
    m.engine.schedule(5_000_000, m.node.smm.trigger, 50_000_000)
    m.engine.run()
    gap = reads[1] - reads[0]
    assert gap >= 55_000_000  # sleep + SMM residency visible in the clock


def test_bad_tsc_hz():
    with pytest.raises(ValueError):
        Clock(Engine(), tsc_hz=0)
