"""Topology, hotplug, and the paper's CPU-count methodology."""

import pytest

from repro.machine.topology import MachineSpec, R410_SPEC, Topology, WYEAST_SPEC


def test_paper_machines_shape():
    for spec in (WYEAST_SPEC, R410_SPEC):
        assert spec.n_physical_cores == 4
        assert spec.n_logical_cpus == 8
        assert spec.memory_bytes == 12 << 30


def test_linux_cpu_numbering():
    """cpu i and cpu i+ncores are HTT siblings (Nehalem/Linux layout)."""
    topo = Topology(R410_SPEC)
    for c in range(4):
        assert topo.cpus[c].core.index == c
        assert topo.cpus[c + 4].core.index == c
        assert topo.cpus[c].sibling is topo.cpus[c + 4]
        assert topo.cpus[c + 4].sibling is topo.cpus[c]
        assert topo.cpus[c].thread_slot == 0
        assert topo.cpus[c + 4].thread_slot == 1


def test_set_logical_cpus_onlining_order():
    """§IV.A: 1-4 CPUs = primaries only (HTT-off-like); 5-8 add siblings."""
    topo = Topology(R410_SPEC)
    topo.set_logical_cpus(3)
    online = sorted(c.index for c in topo.online_cpus)
    assert online == [0, 1, 2]
    assert not topo.htt_active()
    topo.set_logical_cpus(6)
    online = sorted(c.index for c in topo.online_cpus)
    assert online == [0, 1, 2, 3, 4, 5]  # 4 primaries + 2 siblings
    assert topo.htt_active()
    topo.set_logical_cpus(8)
    assert topo.n_online == 8


def test_set_logical_cpus_bounds():
    topo = Topology(R410_SPEC)
    with pytest.raises(ValueError):
        topo.set_logical_cpus(0)
    with pytest.raises(ValueError):
        topo.set_logical_cpus(9)


def test_cpu0_cannot_offline():
    topo = Topology(R410_SPEC)
    with pytest.raises(ValueError):
        topo.set_online(0, False)


def test_htt_toggle():
    topo = Topology(R410_SPEC)
    topo.set_htt(False)
    assert topo.n_online == 4
    assert not topo.htt_active()
    assert all(c.thread_slot == 0 for c in topo.online_cpus)
    topo.set_htt(True)
    assert topo.n_online == 8


def test_offline_sibling_keeps_core_usable():
    """Offlining an HTT sibling leaves the physical core online with one
    thread — the kernel 'ignores the HTT sibling for scheduling'."""
    topo = Topology(R410_SPEC)
    topo.set_online(4, False)  # sibling of cpu0
    core0 = topo.cores[0]
    assert len(core0.online_threads) == 1
    assert core0.online_threads[0].index == 0


def test_listener_fires_on_transitions_only():
    topo = Topology(R410_SPEC)
    events = []
    topo.add_listener(lambda c: events.append((c.index, c.online)))
    topo.set_online(5, False)
    topo.set_online(5, False)  # no-op
    topo.set_online(5, True)
    assert events == [(5, False), (5, True)]


def test_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec("bad", 0, 4, 2, 1e9, 1 << 30)
    with pytest.raises(ValueError):
        MachineSpec("bad", 1, 4, 3, 1e9, 1 << 30)
    with pytest.raises(ValueError):
        MachineSpec("bad", 1, 4, 2, 0.0, 1 << 30)
