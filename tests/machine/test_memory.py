"""Memory capacity model."""

import pytest

from repro.machine.memory import MemoryModel, OutOfMemory, OS_RESERVED_BYTES


def test_available_accounts_for_reservation():
    mm = MemoryModel(capacity_bytes=12 << 30)
    assert mm.available_bytes == (12 << 30) - OS_RESERVED_BYTES


def test_allocate_and_free():
    mm = MemoryModel(capacity_bytes=12 << 30)
    mm.allocate(4 << 30, "array")
    assert mm.allocated_bytes == 4 << 30
    mm.free(4 << 30)
    assert mm.allocated_bytes == 0


def test_overcommit_raises():
    mm = MemoryModel(capacity_bytes=12 << 30)
    with pytest.raises(OutOfMemory):
        mm.allocate(11 << 30, "too big")


def test_fits_is_consistent_with_allocate():
    mm = MemoryModel(capacity_bytes=12 << 30)
    n = mm.available_bytes
    assert mm.fits(n)
    assert not mm.fits(n + 1)
    mm.allocate(n)
    assert not mm.fits(1)


def test_bad_free_rejected():
    mm = MemoryModel(capacity_bytes=1 << 30, reserved_bytes=0)
    mm.allocate(100)
    with pytest.raises(ValueError):
        mm.free(200)
    with pytest.raises(ValueError):
        mm.free(-1)


def test_negative_allocation_rejected():
    mm = MemoryModel(capacity_bytes=1 << 30)
    with pytest.raises(ValueError):
        mm.allocate(-5)
