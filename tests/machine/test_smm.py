"""SMM controller: freeze protocol, latching, self-measurement, gating."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.smm import ENTRY_LATENCY_NS, RELATCH_GAP_NS
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def test_trigger_freezes_and_unfreezes():
    m = make_machine(WYEAST_SPEC)
    states = []
    m.engine.schedule(0, m.node.smm.trigger, 1_000_000)
    m.engine.schedule(500_000, lambda: states.append(("mid", m.node.frozen)))
    m.engine.schedule(2_000_000, lambda: states.append(("after", m.node.frozen)))
    m.engine.run()
    assert states == [("mid", True), ("after", False)]


def test_residency_includes_entry_latency():
    m = make_machine(WYEAST_SPEC)
    m.engine.schedule(0, m.node.smm.trigger, 2_000_000)
    m.engine.run()
    stats = m.node.smm.stats
    assert stats.entries == 1
    assert stats.measured_latency_ns[0] == pytest.approx(
        2_000_000 + ENTRY_LATENCY_NS, rel=0.01
    )


def test_tsc_self_measurement_matches_duration():
    """The driver's TSC-based latency measurement (§III.B)."""
    m = make_machine(WYEAST_SPEC)
    for d in (1_500_000, 105_000_000):
        m.node.smm.trigger(d)
        m.engine.run()
    lats = m.node.smm.stats.measured_latency_ns
    assert lats[0] == pytest.approx(1_500_000 + ENTRY_LATENCY_NS, rel=0.01)
    assert lats[1] == pytest.approx(105_000_000 + ENTRY_LATENCY_NS, rel=0.01)


def test_smi_during_smm_is_latched_and_coalesced():
    m = make_machine(WYEAST_SPEC)
    assert m.node.smm.trigger(10_000_000) is True
    # two more while inside: latched, coalesced to the max duration
    m.engine.schedule(1_000_000, m.node.smm.trigger, 3_000_000)
    m.engine.schedule(2_000_000, m.node.smm.trigger, 5_000_000)
    m.engine.run()
    stats = m.node.smm.stats
    assert stats.entries == 2  # original + one re-delivery
    assert stats.latched == 2
    # the re-delivered residency is the coalesced (max) one
    assert stats.measured_latency_ns[1] == pytest.approx(
        5_000_000 + ENTRY_LATENCY_NS, rel=0.01
    )


def test_relatch_gap_separates_back_to_back_smis():
    m = make_machine(WYEAST_SPEC)
    m.node.smm.trigger(10_000_000)
    m.engine.schedule(1_000_000, m.node.smm.trigger, 10_000_000)
    m.engine.run()
    intervals = m.timeline.intervals("smm.enter", "smm.exit", where="node0")
    assert len(intervals) == 2
    gap = intervals[1][0] - intervals[0][1]
    assert gap == RELATCH_GAP_NS


def test_wait_exit_immediate_when_not_in_smm():
    m = make_machine(WYEAST_SPEC)
    ev = m.node.smm.wait_exit()
    assert ev.triggered


def test_wait_exit_fires_at_exit():
    m = make_machine(WYEAST_SPEC)
    times = []

    def watcher():
        yield m.engine.timeout(1)  # let the SMI land first
        ev = m.node.smm.wait_exit()
        yield ev
        times.append(m.engine.now)

    m.engine.process(watcher(), name="w", gate=None)  # ungated observer
    m.node.smm.trigger(5_000_000)
    m.engine.run()
    assert times[0] == 5_000_000 + ENTRY_LATENCY_NS


def test_gated_wakeups_deferred_fifo():
    """Sleep expiries during SMM deliver at exit, in order."""
    m = make_machine(WYEAST_SPEC)
    order = []

    def sleeper(name, ns):
        def body(task):
            yield from task.sleep(ns)
            order.append((name, task.now_ns()))

        return body

    m.scheduler.spawn(sleeper("a", 2_000_000), "a", REG)
    m.scheduler.spawn(sleeper("b", 3_000_000), "b", REG)
    m.engine.schedule(1_000_000, m.node.smm.trigger, 10_000_000)
    m.engine.run()
    exit_t = 1_000_000 + 10_000_000 + ENTRY_LATENCY_NS
    assert [n for n, _ in order] == ["a", "b"]
    for _, t in order:
        assert t == exit_t


def test_invalid_duration_rejected():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        m.node.smm.trigger(0)


def test_timeline_records_enter_exit():
    m = make_machine(WYEAST_SPEC)
    m.node.smm.trigger(1_000_000)
    m.engine.run()
    assert m.timeline.count("smm.enter") == 1
    assert m.timeline.count("smm.exit") == 1
