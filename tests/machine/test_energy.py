"""Energy model: SMIs raise energy-to-solution (the [7] finding)."""

import pytest

from repro.core.smi import SmiProfile, SmiSource
from repro.machine.energy import EnergyReport, PowerModel, energy_report
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def test_power_model_bounds():
    pm = PowerModel(idle_w=100, active_w=200)
    assert pm.power(0.0) == 100
    assert pm.power(1.0) == 200
    assert pm.power(2.0) == 200  # clamped
    with pytest.raises(ValueError):
        PowerModel(idle_w=0, active_w=100)
    with pytest.raises(ValueError):
        PowerModel(idle_w=300, active_w=100)


def test_report_math():
    rep = EnergyReport(window_s=10.0, busy_cpu_s=40.0, smm_s=0.0, n_cpus=8,
                       model=PowerModel(100, 200))
    assert rep.utilization == pytest.approx(0.5)
    assert rep.energy_j == pytest.approx(150 * 10)
    assert rep.energy_per_op(1e9) == pytest.approx(1.5e-6)
    with pytest.raises(ValueError):
        rep.energy_per_op(0)


def _run(with_smi: bool):
    m = make_machine(WYEAST_SPEC, seed=2)
    if with_smi:
        SmiSource(m.node, SmiProfile.LONG, 400, seed=2)
    work = WYEAST_SPEC.base_hz * 1.0

    def body(task):
        yield from task.compute(work)

    t = m.scheduler.spawn(body, "w", REG)
    m.engine.run_until(t.proc.done_event)
    rep = energy_report(m.node, window_s=t.finished_ns / 1e9)
    return rep, work


def test_smi_raises_energy_to_solution():
    clean, work = _run(False)
    noisy, _ = _run(True)
    assert noisy.energy_j > clean.energy_j * 1.1
    assert noisy.energy_per_op(work) > clean.energy_per_op(work) * 1.1
    assert noisy.smm_s > 0.2


def test_useful_busy_time_unchanged_by_noise():
    clean, _ = _run(False)
    noisy, _ = _run(True)
    assert noisy.busy_cpu_s == pytest.approx(clean.busy_cpu_s, rel=0.01)
