"""Node composition: the wake-up gate, recompute protocol, hotplug guard."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def test_deliver_immediate_when_running():
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.deliver(lambda: seen.append(m.engine.now))
    m.engine.run()
    assert seen == [0]


def test_deliver_deferred_while_frozen_fifo():
    m = make_machine(WYEAST_SPEC)
    seen = []
    m.node.smm.trigger(5_000_000)
    for i in range(3):
        m.node.deliver(lambda i=i: seen.append(i))
    assert seen == []
    m.engine.run()
    assert seen == [0, 1, 2]


def test_gate_protocol_with_custom_process():
    """A process gated by the node resumes only after SMM exit."""
    m = make_machine(WYEAST_SPEC)
    resumed = []

    def body():
        yield m.engine.timeout(1_000_000)  # expires mid-SMM
        resumed.append(m.engine.now)

    m.engine.process(body(), name="gated", gate=m.node)
    m.node.smm.trigger(10_000_000)
    m.engine.run()
    from repro.machine.smm import ENTRY_LATENCY_NS

    assert resumed == [10_000_000 + ENTRY_LATENCY_NS]


def test_offline_busy_cpu_guarded():
    """Raw topology offlining of a busy CPU is a modeling error; the
    sysfs wrapper (which migrates first) is the legal path."""
    m = make_machine(WYEAST_SPEC)

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 1.0)

    t = m.scheduler.spawn(body, "w", REG, affinity={2})
    m.engine.run(until_ns=1_000)
    with pytest.raises(RuntimeError, match="migrate"):
        m.node.topology.set_online(2, False)


def test_unfreeze_listeners_called():
    m = make_machine(WYEAST_SPEC)
    calls = []
    m.node.add_unfreeze_listener(lambda: calls.append(m.engine.now))
    m.node.smm.trigger(1_000_000)
    m.engine.run()
    assert len(calls) == 1


def test_repr_smoke():
    m = make_machine(WYEAST_SPEC)
    assert "node0" in repr(m.node)
