"""Scheduler: placement policy, balancing, misplacement mechanism."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import R410_SPEC
from repro.sched.scheduler import BALANCE_PERIOD_NS
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0,
                      htt_yield=1.0)


def spawn_spinners(m, n, seconds=1.0):
    work = R410_SPEC.base_hz * seconds
    tasks = []

    def body(task):
        yield from task.compute(work)

    for i in range(n):
        tasks.append(m.scheduler.spawn(body, f"s{i}", REG))
    return tasks


def test_placement_spreads_physical_cores_first():
    """With 4 tasks and 8 logical CPUs, each task gets its own core."""
    m = make_machine(R410_SPEC)
    tasks = spawn_spinners(m, 4)
    m.engine.run(until_ns=1_000_000)
    cores = {t.cpu.state.core.index for t in tasks}
    assert len(cores) == 4


def test_fifth_task_lands_on_a_sibling():
    m = make_machine(R410_SPEC)
    tasks = spawn_spinners(m, 5)
    m.engine.run(until_ns=1_000_000)
    assert all(t.cpu.n_tasks == 1 for t in tasks)  # nobody stacked
    cores = [t.cpu.state.core.index for t in tasks]
    assert len(set(cores)) == 4  # one core hosts two siblings


def test_oversubscription_stacks_evenly():
    m = make_machine(R410_SPEC)
    tasks = spawn_spinners(m, 16)
    m.engine.run(until_ns=1_000_000)
    loads = sorted(cpu.n_tasks for cpu in m.node.cpus)
    assert loads == [2] * 8


def test_idle_balance_pulls_from_stacked_cpu():
    """When a task finishes and leaves an idle CPU next to a stacked one,
    the idle balance rebalances within microseconds."""
    m = make_machine(R410_SPEC)
    m.sysfs.set_logical_cpus(2)
    # Three tasks on two CPUs: loads 2/1. When the solo one finishes, the
    # stacked pair must split across both CPUs.
    short = R410_SPEC.base_hz * 0.01
    long = R410_SPEC.base_hz * 1.0
    done = []

    def body(kind, work):
        def inner(task):
            yield from task.compute(work)
            done.append(kind)

        return inner

    a = m.scheduler.spawn(body("long", long), "a", REG)
    b = m.scheduler.spawn(body("long", long), "b", REG)
    c = m.scheduler.spawn(body("short", short), "c", REG)
    m.engine.run(until_ns=int(0.5e9))
    # After the short task exits, a and b should occupy distinct CPUs.
    assert a.cpu is not None and b.cpu is not None
    assert a.cpu.index != b.cpu.index


def test_evacuate_moves_work():
    m = make_machine(R410_SPEC)
    tasks = spawn_spinners(m, 2)
    m.engine.run(until_ns=1_000)
    victim_cpu = tasks[0].cpu.index
    m.scheduler.evacuate(victim_cpu)
    assert all(t.cpu.index != victim_cpu for t in tasks if t.cpu)


def test_sysfs_offline_with_running_tasks():
    m = make_machine(R410_SPEC)
    tasks = spawn_spinners(m, 8, seconds=0.2)
    m.engine.run(until_ns=1_000_000)
    m.sysfs.set_logical_cpus(2)
    assert m.node.topology.n_online == 2
    m.engine.run()
    # everyone completes despite the shrink
    assert all(t.proc.result is None and not t.proc.alive for t in tasks)


def test_misplacement_needs_htt():
    """The post-SMM wake-up misplacement cannot happen with HTT off —
    the mechanism behind Tables 4–5 being an HTT phenomenon."""
    from repro.core.smi import SmiProfile, SmiSource

    def run(htt: bool) -> int:
        m = make_machine(R410_SPEC, seed=7)
        if not htt:
            m.sysfs.set_htt(False)
        SmiSource(m.node, SmiProfile.LONG, 300, seed=3)
        tasks = spawn_spinners(m, 4, seconds=3.0)
        done = m.engine.event("all")
        remaining = {"n": len(tasks)}

        def on_done(_):
            remaining["n"] -= 1
            if remaining["n"] == 0 and not done.triggered:
                done.succeed()

        for t in tasks:
            t.proc.done_event.add_callback(on_done)
        m.engine.run_until(done)
        return m.scheduler.misplacements

    assert run(htt=False) == 0
    assert run(htt=True) >= 1  # seeded: the 300 ms interval forces many tries


def test_periodic_balancer_heals_sibling_sharing():
    m = make_machine(R410_SPEC, seed=1)
    tasks = spawn_spinners(m, 2, seconds=2.0)
    m.engine.run(until_ns=1_000_000)
    # Manually force a sibling-sharing misplacement.
    a, b = tasks
    sib = a.cpu.state.sibling
    item = b.current_item
    m.node.sync()
    b.cpu.remove_segment(item)
    m.node.cpu(sib.index).add_segment(item)
    b.cpu = m.node.cpu(sib.index)
    m.node.apply_rates()
    assert b.cpu.state.core is a.cpu.state.core
    # The periodic balancer must undo it within one period.
    m.engine.run(until_ns=m.engine.now + BALANCE_PERIOD_NS + 1_000_000)
    assert b.cpu.state.core is not a.cpu.state.core


def test_deterministic_given_seed():
    def run(seed):
        from repro.core.smi import SmiProfile, SmiSource

        m = make_machine(R410_SPEC, seed=seed)
        SmiSource(m.node, SmiProfile.LONG, 500, seed=seed)
        tasks = spawn_spinners(m, 6, seconds=1.5)
        done = m.engine.event("all")
        remaining = {"n": len(tasks)}

        def on_done(_):
            remaining["n"] -= 1
            if remaining["n"] == 0 and not done.triggered:
                done.succeed()

        for t in tasks:
            t.proc.done_event.add_callback(on_done)
        m.engine.run_until(done)
        return [t.finished_ns for t in tasks]

    assert run(11) == run(11)
    assert run(11) != run(12)  # different SMI phase ⇒ different trace
