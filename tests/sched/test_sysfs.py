"""The sysfs hotplug front-end (§IV.A methodology)."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import R410_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def test_set_logical_cpus_matches_paper_order():
    m = make_machine(R410_SPEC)
    for k, expected in ((1, [0]), (4, [0, 1, 2, 3]), (5, [0, 1, 2, 3, 4]),
                        (8, list(range(8)))):
        m.sysfs.set_logical_cpus(k)
        online = sorted(c.index for c in m.node.topology.online_cpus)
        assert online == expected, k
        assert m.sysfs.online_count() == k


def test_shrink_migrates_running_work():
    m = make_machine(R410_SPEC)
    tasks = []

    def body(task):
        yield from task.compute(R410_SPEC.base_hz * 0.5)
        return task.now_ns()

    for i in range(8):
        tasks.append(m.scheduler.spawn(body, f"w{i}", REG))
    m.engine.run(until_ns=10_000_000)
    m.sysfs.set_logical_cpus(2)
    m.engine.run()
    # all complete; with 8 tasks on 2 CPUs the tail is ~4× one-task time
    finish = max(t.proc.result for t in tasks) / 1e9
    assert finish > 1.5  # heavily serialized, proving the shrink applied
    for t in tasks:
        assert not t.proc.alive


def test_htt_toggle_via_sysfs():
    m = make_machine(R410_SPEC)
    m.sysfs.set_htt(False)
    assert m.node.topology.n_online == 4
    assert not m.node.topology.htt_active()
    m.sysfs.set_htt(True)
    assert m.node.topology.n_online == 8


def test_grow_after_shrink_speeds_completion():
    m = make_machine(R410_SPEC)
    m.sysfs.set_logical_cpus(1)

    def body(task):
        yield from task.compute(R410_SPEC.base_hz * 0.4)
        return task.now_ns()

    a = m.scheduler.spawn(body, "a", REG)
    b = m.scheduler.spawn(body, "b", REG)
    # after 0.1 s, online a second CPU — the pair should split
    m.engine.schedule(100_000_000, m.sysfs.set_logical_cpus, 2)
    m.engine.run(until_ns=99_000_000)
    assert a.cpu.index == b.cpu.index == 0  # sharing cpu0
    m.engine.run()
    # sharing for 0.1 s then parallel: total ≈ 0.1 + 0.35 < serial 0.8
    assert max(a.proc.result, b.proc.result) / 1e9 < 0.6
