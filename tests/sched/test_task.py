"""Task model: compute/sleep/wait, accounting, profile overrides."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.sched.task import TaskState
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)
SLOW = WorkloadProfile(name="slow", mem_ref_fraction=0.5, base_miss_rate=0.5)


def test_compute_then_done_state():
    m = make_machine(WYEAST_SPEC)

    def body(task):
        assert task.state is TaskState.NEW
        yield from task.compute(1000.0)
        return "ok"

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.run()
    assert t.proc.result == "ok"
    assert t.state is TaskState.DONE
    assert t.finished_ns is not None


def test_zero_work_is_noop():
    m = make_machine(WYEAST_SPEC)

    def body(task):
        yield from task.compute(0.0)
        return task.now_ns()

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.run()
    assert t.proc.result == 0


def test_negative_work_rejected():
    m = make_machine(WYEAST_SPEC)

    def parent(task):
        try:
            yield from task.compute(-1.0)
        except ValueError:
            return "rejected"

    t = m.scheduler.spawn(parent, "t", REG)
    m.engine.run()
    assert t.proc.result == "rejected"


def test_sleep_duration():
    m = make_machine(WYEAST_SPEC)

    def body(task):
        yield from task.sleep(123_456)
        return task.now_ns()

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.run()
    assert t.proc.result == 123_456


def test_wait_event_value():
    m = make_machine(WYEAST_SPEC)
    ev = m.engine.event()

    def body(task):
        v = yield from task.wait(ev)
        return v

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.schedule(10, ev.succeed, "payload")
    m.engine.run()
    assert t.proc.result == "payload"


def test_profile_override_restores_after_segment():
    m = make_machine(WYEAST_SPEC)

    def body(task):
        yield from task.compute(100.0, profile=SLOW)
        assert task.profile is REG
        yield from task.compute(100.0)

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.run()
    assert t.acct.segments == 2


def test_accounting_counts_work_and_time():
    m = make_machine(WYEAST_SPEC)
    work = WYEAST_SPEC.base_hz * 0.25

    def body(task):
        yield from task.compute(work)

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.run()
    assert t.acct.work_done == pytest.approx(work)
    assert t.acct.true_ns == pytest.approx(0.25e9, rel=1e-6)
    assert t.acct.stolen_ns == 0.0
    assert t.acct.kernel_ns == pytest.approx(t.acct.true_ns)


def test_accounting_separates_stolen_time():
    m = make_machine(WYEAST_SPEC)
    work = WYEAST_SPEC.base_hz * 0.1

    def body(task):
        yield from task.compute(work)

    t = m.scheduler.spawn(body, "t", REG)
    m.engine.schedule(20_000_000, m.node.smm.trigger, 50_000_000)
    m.engine.run()
    assert t.acct.stolen_ns == pytest.approx(50_005_000, rel=0.01)
    assert t.acct.true_ns == pytest.approx(0.1e9, rel=1e-3)
    assert t.acct.kernel_ns == pytest.approx(t.acct.true_ns + t.acct.stolen_ns)
    assert t.acct.inflation == pytest.approx(0.5, rel=0.05)


def test_affinity_respected():
    m = make_machine(WYEAST_SPEC)

    def body(task):
        yield from task.compute(1000.0)
        return task.cpu  # None after completion, so capture inside

    placements = []

    def body2(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 0.01)
        placements.append(task.tid)

    t = m.scheduler.spawn(body2, "t", REG, affinity={3})
    # inspect placement while running
    m.engine.schedule(1_000_000, lambda: placements.append(t.cpu.index))
    m.engine.run()
    assert 3 in placements
