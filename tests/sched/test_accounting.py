"""Accounting conservation as a property: under ARBITRARY seeded SMI
schedules and task mixes, kernel time ≡ true + stolen, and true service
time is invariant to noise."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.smi import SmiDurations, SmiSource
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def run_mix(n_tasks, work_s_each, smi_ms, interval_ms, seed):
    m = make_machine(WYEAST_SPEC, seed=seed)
    if smi_ms > 0:
        SmiSource(
            m.node,
            SmiDurations("x", smi_ms * 1_000_000, smi_ms * 1_000_000),
            interval_ms,
            seed=seed,
        )
    tasks = []

    def body(w):
        def inner(task):
            yield from task.compute(WYEAST_SPEC.base_hz * w)

        return inner

    for i, w in enumerate(work_s_each[:n_tasks]):
        tasks.append(m.scheduler.spawn(body(w), f"t{i}", REG))
    done = m.engine.event("all")
    remaining = {"n": len(tasks)}

    def on_done(_):
        remaining["n"] -= 1
        if remaining["n"] == 0 and not done.triggered:
            done.succeed()

    for t in tasks:
        t.proc.done_event.add_callback(on_done)
    m.engine.run_until(done, limit_ns=int(300e9))
    return m, tasks


@settings(max_examples=15, deadline=None)
@given(
    n_tasks=st.integers(min_value=1, max_value=6),
    smi_ms=st.integers(min_value=0, max_value=150),
    interval_ms=st.integers(min_value=200, max_value=1500),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_conservation_under_arbitrary_noise(n_tasks, smi_ms, interval_ms, seed):
    works = [0.1, 0.2, 0.15, 0.05, 0.12, 0.18]
    m, tasks = run_mix(n_tasks, works, smi_ms, interval_ms, seed)
    for t in tasks:
        assert t.acct.kernel_ns == pytest.approx(
            t.acct.true_ns + t.acct.stolen_ns, rel=1e-9, abs=1.0
        )
    assert m.scheduler.accounting.conservation_error() < 10.0  # ns


@settings(max_examples=10, deadline=None)
@given(
    smi_ms=st.integers(min_value=1, max_value=120),
    interval_ms=st.integers(min_value=300, max_value=1200),
    seed=st.integers(min_value=0, max_value=100),
)
def test_work_invariant_and_occupancy_bounded(smi_ms, interval_ms, seed):
    """Noise stretches wall time but never changes the work completed;
    true occupancy can only grow (post-SMM misplacement may slow a task's
    CPU share, never shrink its service need) and is bounded by the
    sibling-sharing worst case (2×)."""
    _, clean = run_mix(2, [0.1, 0.2], 0, 1000, seed)
    _, noisy = run_mix(2, [0.1, 0.2], smi_ms, interval_ms, seed)
    for tc, tn in zip(clean, noisy):
        assert tn.acct.work_done == tc.acct.work_done
        assert tn.acct.true_ns >= tc.acct.true_ns * 0.999
        assert tn.acct.true_ns <= tc.acct.true_ns * 2.0
        assert tn.acct.kernel_ns >= tn.acct.true_ns


def test_stolen_bounded_by_residency_times_victims():
    m, tasks = run_mix(4, [1.0, 1.0, 1.0, 1.0], 100, 400, seed=5)
    total_stolen = sum(t.acct.stolen_ns for t in tasks)
    # at most (#busy cpus) × residency can be charged
    assert total_stolen <= 4 * m.node.smm.stats.total_ns * 1.001
    assert total_stolen > 0
