"""Fork-vs-replay byte identity (DESIGN.md §11).

The warmup-prefix fork path (:mod:`repro.runx.forkshare`) is only
admissible because a forked run is *byte-identical* to a cold replay —
the child inherits the exact heap, generator frames, and RNG streams at
the fork point, and retargeting moves only the one not-yet-fired tick.
These tests pin that claim three ways:

* a seeded fuzzer over topologies, SMM classes, seeds, and interval
  pairs, comparing forked values to cold :func:`run_nas_config` replays
  float-for-float;

* the golden BT/FT cells run through the forked path (interval made
  explicit, which is what arms prefix sharing) under **both**
  ``REPRO_ENGINE=py`` and ``REPRO_ENGINE=vec``, against the pinned
  payload bytes;

* a manifest-level check — the canonical JSON of a forked cell payload
  equals the ``REPRO_SNAPSHOT=off`` payload of the same spec.
"""

import json
import os
import random

import pytest

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.core.experiment import rep_seed
from repro.runx.cells import run_cell
from repro.runx.forkshare import (
    fork_supported,
    forked_nas_values,
    global_store,
    reset_global_store,
)

pytestmark = pytest.mark.skipif(not fork_supported(),
                                reason="fork identity needs os.fork")


@pytest.fixture(autouse=True)
def _fork_path_on(monkeypatch):
    # Identity tests must exercise the fork path even on the CI leg
    # that exports REPRO_SNAPSHOT=off for the rest of the suite.
    monkeypatch.setenv("REPRO_SNAPSHOT", "auto")

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "cells.json")

with open(GOLDEN, encoding="utf-8") as fp:
    _CELLS = json.load(fp)


# -- fuzzer -------------------------------------------------------------------

def _fuzz_cases(n):
    rng = random.Random(0xF0F0)
    cases = []
    for _ in range(n):
        base = rng.randrange(400, 1200)
        cases.append({
            "rpn": rng.choice([1, 2]),
            "smm": rng.choice([1, 2]),
            "seed": rng.randrange(1, 10_000),
            "intervals": [base, base + rng.randrange(0, 800)],
        })
    return cases


@pytest.mark.parametrize("case", _fuzz_cases(4),
                         ids=lambda c: f"smm{c['smm']}-s{c['seed']}")
def test_fuzzed_fork_points_match_cold_replay(case):
    cfg = NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=case["rpn"])
    params = {"bench": "EP", "cls": "A", "nodes": 2, "rpn": case["rpn"],
              "smm": case["smm"], "reps": 2}
    for iv in case["intervals"]:
        fv = forked_nas_values(dict(params, interval=iv), case["seed"])
        assert fv is not None, f"interval {iv} unexpectedly cold"
        cold = [
            run_nas_config(cfg, smm=case["smm"],
                           seed=rep_seed(case["seed"], r),
                           interval_jiffies=iv)
            for r in range(2)
        ]
        assert fv == cold, f"fork drift at interval {iv}"
    # The second interval must have reused the first's warm prefixes.
    assert global_store().stats()["hits"] >= 2


# -- golden cells through the forked path -------------------------------------

@pytest.mark.parametrize("engine", ["py", "vec"])
@pytest.mark.parametrize("name", ["bt", "ft"])
def test_golden_cell_forked_is_byte_identical(monkeypatch, name, engine):
    """The pinned payloads, reproduced through a fork: making the
    default interval explicit arms prefix sharing without changing the
    simulation, so the bytes must not move — under either engine."""
    if engine == "vec":
        pytest.importorskip("numpy", reason="vec engine needs numpy")
    monkeypatch.setenv("REPRO_ENGINE", engine)
    reset_global_store()  # warm prefixes are engine-specific state
    cell = _CELLS[name]
    params = dict(cell["params"], interval=1000)  # the cold-path default
    payload = run_cell(cell["fn"], params, cell["seed"])
    stats = global_store().stats()
    assert stats["forks"] + stats["hits"] > 0, "fork path never engaged"
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(cell["payload"], sort_keys=True)


# -- manifest-level equality --------------------------------------------------

def test_forked_payload_equals_snapshot_off_payload(monkeypatch):
    params = {"bench": "FT", "cls": "A", "nodes": 2, "rpn": 2,
              "smm": 2, "reps": 2, "interval": 1000}
    monkeypatch.setenv("REPRO_SNAPSHOT", "off")
    cold = run_cell("nas", dict(params), 99)
    monkeypatch.delenv("REPRO_SNAPSHOT")
    reset_global_store()
    forked = run_cell("nas", dict(params), 99)
    assert global_store().stats()["forks"] > 0
    assert json.dumps(forked, sort_keys=True) == \
        json.dumps(cold, sort_keys=True)
