"""Fault-injection determinism gates.

Two invariants guard the fault subsystem:

* **Zero overhead when disabled** — a plan that matches nothing, or an
  armed injector whose rules cannot fire, must leave every payload
  byte-identical to the pinned golden cells (the fault hooks may not
  perturb event ordering, seeds, or arithmetic).
* **Schedule independence** — with a plan active, ``--jobs 4`` must
  produce byte-identical results to ``--jobs 1``, including the
  failed-in-sim rows (cell seeds are position-derived and injector RNGs
  are seeded per repetition, never shared).
"""

import json
import os

import pytest

from repro.cli import _with_faults
from repro.faults import FaultPlan, FaultRule
from repro.runx import SweepRunner
from repro.runx.cells import run_cell
from repro.runx.spec import CellSpec

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "cells.json")

with open(GOLDEN, encoding="utf-8") as fp:
    _CELLS = json.load(fp)

#: Per golden cell, a rule that matches it but cannot fire: the node
#: index does not exist in that cell's topology (attach skips it).
_INERT_RULE = {"bt": 99, "ft": 99, "convolve": 1}


@pytest.mark.parametrize("name", sorted(_CELLS))
def test_unmatched_plan_leaves_golden_payloads_byte_identical(name):
    cell = _CELLS[name]
    spec = CellSpec(id=name, fn=cell["fn"], params=cell["params"],
                    base_seed=cell["seed"])
    plan = FaultPlan([FaultRule(fault="node_crash", match="no-such-cell-*")])
    (rewritten,), hit = _with_faults([spec], plan)
    assert hit == 0 and rewritten is spec
    payload = run_cell(rewritten.fn, rewritten.params, rewritten.base_seed)
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(cell["payload"], sort_keys=True)


@pytest.mark.parametrize("name", sorted(_CELLS))
def test_armed_but_inert_injector_is_byte_identical(name):
    """The stronger claim: even running through the *faulted* executor
    branch (injector attached, link hook live, timers considered) the
    payload must not drift when no fault can actually fire."""
    cell = _CELLS[name]
    params = dict(cell["params"])
    params["faults"] = [{"fault": "node_crash", "match": "*",
                         "node": _INERT_RULE[name], "at_s": 1.0}]
    payload = run_cell(cell["fn"], params, cell["seed"])
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(cell["payload"], sort_keys=True)


def _strip_volatile(record):
    rec = dict(record)
    rec.pop("duration_s", None)
    return rec


def test_jobs4_matches_jobs1_byte_for_byte_under_fault_plan():
    specs = [
        CellSpec(id="EP.A n=1 smm=0", fn="nas", base_seed=11,
                 params={"bench": "EP", "cls": "A", "nodes": 1, "rpn": 1,
                         "smm": 0, "reps": 1}),
        CellSpec(id="EP.A n=2 smm=0", fn="nas", base_seed=22,
                 params={"bench": "EP", "cls": "A", "nodes": 2, "rpn": 1,
                         "smm": 0, "reps": 1}),
        CellSpec(id="EP.A n=2 smm=2 crash", fn="nas", base_seed=33,
                 params={"bench": "EP", "cls": "A", "nodes": 2, "rpn": 1,
                         "smm": 2, "reps": 1}),
        CellSpec(id="EP.A n=2 smm=0 lossy", fn="nas", base_seed=44,
                 params={"bench": "EP", "cls": "A", "nodes": 2, "rpn": 1,
                         "smm": 0, "reps": 1}),
    ]
    plan = FaultPlan([
        FaultRule(fault="node_crash", match="*crash", node=1, at_s=1.0),
        FaultRule(fault="link_delay", match="*lossy", delay_ns=3_000_000,
                  p=0.5),
    ])
    specs, hit = _with_faults(specs, plan)
    assert hit == 2

    def sweep(jobs):
        results = SweepRunner(jobs=jobs, isolation="process",
                              timeout_s=300).run(specs)
        return {cid: _strip_volatile(r.to_record())
                for cid, r in results.items()}

    serial, parallel = sweep(1), sweep(4)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)
    assert serial["EP.A n=2 smm=2 crash"]["status"] == "failed-in-sim"
    assert serial["EP.A n=2 smm=2 crash"]["fault"]["events"]
    assert serial["EP.A n=2 smm=0 lossy"]["status"] == "ok"
    assert serial["EP.A n=1 smm=0"]["status"] == "ok"
