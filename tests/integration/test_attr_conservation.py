"""Attribution invariants on real table cells.

Two properties gate the attribution engine:

1. **Conservation** — the four components (direct / induced / contention
   / residual) must tile the measured slowdown, with |residual| within
   tolerance of the slowdown.  The decomposition is built along the
   terminal rank's exact timeline, so in practice the residual is ~0;
   the 5% tolerance is headroom, not slack being used.
2. **Determinism** — the attribution block attached by ``--attr`` sweeps
   must be byte-identical whether cells run in-process serially or in
   parallel worker subprocesses (``--jobs 4``), like every other payload.
"""

import json
import os

import pytest

from repro.obs.attr import attribute_cell
from repro.runx import CellSpec, SweepRunner
from repro.runx.cells import run_cell

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "explain_cell.json")

with open(GOLDEN, encoding="utf-8") as fp:
    _GOLDEN = json.load(fp)


@pytest.mark.parametrize("bench,cls,nodes,rpn", [
    ("BT", "A", 4, 1),
    ("EP", "A", 2, 1),
    ("FT", "A", 4, 4),
])
def test_conservation_on_real_cells(bench, cls, nodes, rpn):
    a = attribute_cell(bench, cls=cls, nodes=nodes, rpn=rpn, smm=2, seed=1)
    d = a.decomposition
    assert d.conserved, (
        f"{bench}.{cls} n={nodes}: residual {d.residual_s:.4f}s is "
        f"{100 * d.residual_frac:.1f}% of the slowdown")
    total = d.direct_s + d.induced_s + d.contention_s + d.residual_s
    assert total == pytest.approx(d.slowdown_s, abs=1e-9)


def test_direct_share_tracks_duty_cycle():
    """The paper's core claim, recovered by the decomposition: direct
    theft is ~the SMI duty cycle of the runtime; the rest of the
    slowdown on communicating benchmarks is amplification."""
    a = attribute_cell("BT", cls="A", nodes=16, rpn=1, smm=2, seed=1)
    r = a.report
    assert r["direct_share_of_runtime_pct"] == pytest.approx(
        r["duty_nominal_pct"], abs=2.0)
    # BT at 16 ranks communicates heavily: induced wait dominates.
    c = r["components"]
    assert c["induced_wait_s"] > c["direct_smi_s"]
    assert c["induced_wait_s"] > 0.5 * r["slowdown_s"]


def test_golden_attribution_payload_is_byte_identical():
    payload = run_cell(_GOLDEN["fn"], _GOLDEN["params"], _GOLDEN["seed"])
    got = json.dumps(payload, sort_keys=True)
    want = json.dumps(_GOLDEN["payload"], sort_keys=True)
    assert got == want, "attribution payload drifted from golden"


def test_attribution_identical_serial_vs_parallel():
    spec = CellSpec(id="EP.A n=2 rpn=1 smm=2", fn=_GOLDEN["fn"],
                    base_seed=_GOLDEN["seed"], params=_GOLDEN["params"])
    serial = SweepRunner(jobs=1, isolation="inline").run([spec])
    parallel = SweepRunner(jobs=4, isolation="process").run([spec])
    v1 = serial[spec.id].value
    v4 = parallel[spec.id].value
    assert "attribution" in v1
    assert json.dumps(v1, sort_keys=True) == json.dumps(v4, sort_keys=True)
