"""End-to-end checks of the paper's headline claims.

Each test names the claim it verifies.  These are the acceptance tests of
the reproduction: if one fails, a shape the paper reports has been lost.
"""

import pytest

from repro.apps.convolve import CACHE_FRIENDLY, run_convolve
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.apps.unixbench import run_unixbench
from repro.core.smi import SmiProfile


def _pct(bench, nodes, rpn=1, cls=NasClass.A, seed=3, htt=False):
    cfg = NasConfig(bench, cls, nodes, rpn, htt=htt)
    b = run_nas_config(cfg, smm=0, seed=seed)
    l = run_nas_config(cfg, smm=2, seed=seed)
    return 100.0 * (l - b) / b


def test_claim_long_smi_costs_duty_cycle_on_one_rank():
    """§I/§III: single-rank long-SMI cost ≈ the SMM duty cycle (~11 %),
    for every benchmark (Tables 1–3, row 1: 10.8, 11.0, 10.1 %)."""
    for bench in ("EP", "BT", "FT"):
        p = _pct(bench, 1)
        assert 8.0 < p < 16.0, (bench, p)


def test_claim_short_smis_produce_only_jitter():
    """§I: 'shorter length SMIs produce jitter, their effects upon
    performance are moderate' — < 1 % on every benchmark."""
    for bench in ("EP", "BT", "FT"):
        cfg = NasConfig(bench, NasClass.A, 1, 1)
        b = run_nas_config(cfg, smm=0, seed=3)
        s = run_nas_config(cfg, smm=1, seed=3)
        assert abs(s - b) / b < 0.01, bench


def test_claim_degradation_increases_with_communicating_nodes():
    """Abstract: 'performance degradation increases when SMIs are enabled
    upon multiple communicating nodes.'"""
    assert _pct("BT", 16) > _pct("BT", 4) > 0
    assert _pct("FT", 16) > _pct("FT", 1)
    assert _pct("EP", 16) > _pct("EP", 1)


def test_claim_synchronization_amplifies_noise():
    """§III: sync-heavy BT and alltoall-heavy FT amplify more than the
    embarrassingly-parallel EP at 16 nodes."""
    ep, bt, ft = _pct("EP", 16), _pct("BT", 16), _pct("FT", 16)
    assert bt > ep
    assert ft > ep


def test_claim_four_ranks_per_node_amplifies_bt():
    """Table 1: at 16 rows, 4 ranks/node suffers a larger long-SMI % than
    1 rank/node (68 % vs 96 % in the paper — more victims per freeze)."""
    assert _pct("BT", 16, rpn=4) > _pct("BT", 16, rpn=1) * 0.9


def test_claim_htt_amplifies_long_smi_for_ep():
    """Tables 4–5: with long SMIs, ht=1 is (mostly) slower than ht=0; with
    SMM 0/1 the difference is negligible.  Checked on EP class A at the
    16-node row where the paper sees the largest effect (+35 %)."""
    cfg0 = NasConfig("EP", NasClass.A, 16, 4, htt=False)
    cfg1 = NasConfig("EP", NasClass.A, 16, 4, htt=True)
    base0 = run_nas_config(cfg0, smm=0, seed=3)
    base1 = run_nas_config(cfg1, smm=0, seed=3)
    assert abs(base1 - base0) / base0 < 0.05  # no-SMI: HTT neutral
    # average over seeds: the misplacement mechanism is stochastic
    long0 = sum(run_nas_config(cfg0, smm=2, seed=s) for s in (3, 11, 19)) / 3
    long1 = sum(run_nas_config(cfg1, smm=2, seed=s) for s in (3, 11, 19)) / 3
    assert long1 > long0  # HTT pays extra under long SMIs


def test_claim_convolve_knee_at_600ms():
    """§IV.B/D: 'minimal or no impact ... up to approximately 600 ms
    intervals', dramatic below."""
    base = run_convolve(CACHE_FRIENDLY, 4, seed=1).elapsed_s

    def t(iv):
        return run_convolve(
            CACHE_FRIENDLY, 4, smi_durations=SmiProfile.LONG,
            smi_interval_jiffies=iv, seed=1,
        ).elapsed_s

    above_knee = (t(900) - base) / base
    below_knee = (t(100) - base) / base
    assert above_knee < 0.20
    assert below_knee > 0.80


def test_claim_unixbench_symmetric_depression_and_core_scaling():
    """§IV.C: CPU configurations are 'affected symmetrically'; 'as the
    number of cores increases, the effect of SMIs becomes greater'
    (absolute score loss grows with cores)."""
    rel_losses = {}
    abs_losses = {}
    for k in (1, 4):
        base = run_unixbench(k, seed=1, duration_s=0.5).total_index
        noisy = run_unixbench(k, SmiProfile.LONG, 300, seed=1, duration_s=0.5).total_index
        rel_losses[k] = (base - noisy) / base
        abs_losses[k] = base - noisy
    assert abs(rel_losses[1] - rel_losses[4]) < 0.15   # symmetric in relative terms
    assert abs_losses[4] > 2.5 * abs_losses[1]         # larger absolute effect


def test_claim_smm_time_invisible_to_tools():
    """§V: 'The impacts would not be reported correctly by the current
    generation of performance tools' — kernel accounting inflates exactly
    by the stolen time."""
    from repro.core.attribution import attribute
    from repro.core.smi import SmiSource
    from repro.machine.profile import COMPUTE_BOUND
    from repro.machine.topology import WYEAST_SPEC
    from repro.system import make_machine

    m = make_machine(WYEAST_SPEC, seed=5)
    SmiSource(m.node, SmiProfile.LONG, 500, seed=5)

    def body(task):
        yield from task.compute(COMPUTE_BOUND.solo_rate(WYEAST_SPEC.base_hz) * 2.0)

    t = m.scheduler.spawn(body, "victim", COMPUTE_BOUND)
    m.engine.run_until(t.proc.done_event)
    rep = attribute(m.node)
    victim = rep.tasks[0]
    wall = t.finished_ns / 1e9
    # the kernel would report ~wall seconds of CPU, the truth is ~2.0 s
    assert victim.kernel_s == pytest.approx(wall, rel=0.02)
    assert victim.true_s == pytest.approx(2.0, rel=0.02)
    assert victim.inflation_pct > 15.0


def test_claim_detector_sees_what_throughput_misses():
    """Tool-developer angle (§I): even performance-invisible short SMIs
    are detectable as latency gaps over the BIOSBITS budget."""
    from repro.core.detector import GapDetector
    from repro.core.smi import SmiSource
    from repro.machine.topology import WYEAST_SPEC
    from repro.system import make_machine

    m = make_machine(WYEAST_SPEC, seed=6)
    SmiSource(m.node, SmiProfile.SHORT, 250, seed=6)
    det = GapDetector(m.node)
    proc = m.engine.process(det.run(int(1e9)), name="det", gate=m.node)
    m.engine.run_until(proc.done_event)
    assert det.report.biosbits_violations >= 3
