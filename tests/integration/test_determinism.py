"""Cross-subsystem determinism: same seed ⇒ identical results.

Reproducibility is a design goal (DESIGN.md): the only randomness is the
seeded SMI phase/duration jitter and the seeded scheduler perturbation.
"""

from repro.apps.convolve import CACHE_FRIENDLY, run_convolve
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.apps.unixbench import run_unixbench
from repro.core.smi import SmiProfile


def test_nas_runs_bitwise_repeatable():
    cfg = NasConfig("BT", NasClass.A, 4, 1)
    assert run_nas_config(cfg, smm=2, seed=42) == run_nas_config(cfg, smm=2, seed=42)


def test_nas_seed_sensitivity():
    cfg = NasConfig("EP", NasClass.A, 4, 1)
    a = run_nas_config(cfg, smm=2, seed=1)
    b = run_nas_config(cfg, smm=2, seed=2)
    assert a != b


def test_convolve_repeatable():
    kw = dict(smi_durations=SmiProfile.LONG, smi_interval_jiffies=350, seed=7)
    assert (
        run_convolve(CACHE_FRIENDLY, 4, **kw).elapsed_s
        == run_convolve(CACHE_FRIENDLY, 4, **kw).elapsed_s
    )


def test_unixbench_repeatable():
    a = run_unixbench(4, SmiProfile.LONG, 700, seed=9, duration_s=0.3)
    b = run_unixbench(4, SmiProfile.LONG, 700, seed=9, duration_s=0.3)
    assert a.total_index == b.total_index
    assert [t.raw for t in a.percpu.tests] == [t.raw for t in b.percpu.tests]


def test_base_runs_noise_free_and_exact():
    """SMM-0 runs contain no randomness at all: any two seeds agree."""
    cfg = NasConfig("FT", NasClass.A, 2, 1)
    assert run_nas_config(cfg, smm=0, seed=1) == run_nas_config(cfg, smm=0, seed=999)
