"""The examples must run: they are the documented public-API surface."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", timeout=120)
    assert "long-SMI slowdown" in out
    assert "stolen" in out


def test_smi_detection():
    out = run_example("smi_detection.py", timeout=180)
    assert "BIOSBITS" in out
    assert "detector:" in out


@pytest.mark.slow
def test_mpi_noise_study():
    out = run_example("mpi_noise_study.py", timeout=400)
    assert "EP.A" in out and "FT.A" in out
    assert "paper %" in out


@pytest.mark.slow
def test_convolve_htt():
    out = run_example("convolve_htt.py", timeout=500)
    assert "CacheFriendly" in out and "CacheUnfriendly" in out
    assert "max |Δ| = 0.00e+00" in out
