"""Determinism-under-optimization gate: golden cell payloads.

``golden/cells.json`` holds the exact ``run_cell`` payloads of one BT
cell, one FT cell, and one Convolve line, captured *before* the engine
hot-path overhaul with fixed seeds.  Every optimization to the engine,
rate model, scheduler, or MPI layer must keep these byte-identical: the
fluid model is exact, the event order is pinned by (time, seq), and the
seeds are position-derived, so any payload drift means an optimization
changed simulation semantics, not just speed.

Regenerate (only when an *intentional* model change lands, never for a
perf change)::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.runx.cells import run_cell
    path = "tests/integration/golden/cells.json"
    g = json.load(open(path))
    for c in g.values():
        c["payload"] = run_cell(c["fn"], c["params"], c["seed"])
    json.dump(g, open(path, "w"), indent=2, sort_keys=True)
    EOF
"""

import json
import os

import pytest

from repro.runx.cells import run_cell

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "cells.json")

with open(GOLDEN, encoding="utf-8") as fp:
    _CELLS = json.load(fp)


@pytest.mark.parametrize("name", sorted(_CELLS))
def test_golden_payload_is_byte_identical(name):
    cell = _CELLS[name]
    payload = run_cell(cell["fn"], cell["params"], cell["seed"])
    # Compare via canonical JSON so a diff shows *where* the payloads
    # diverge, and so the comparison matches what lands in manifests.
    got = json.dumps(payload, sort_keys=True)
    want = json.dumps(cell["payload"], sort_keys=True)
    assert got == want, f"golden cell {name!r} payload drifted"
