"""Closed-form models, and their agreement with the simulator."""

import math

import pytest

from repro.core.analytic import (
    coupled_utilization_bounds,
    duty_cycle,
    expected_extra_max_of_n,
    serial_slowdown,
)


def test_duty_cycle_free_running():
    assert duty_cycle(105e6, 1000e6) == pytest.approx(0.105)


def test_duty_cycle_swallowed_regime():
    assert duty_cycle(105e6, 50e6) == pytest.approx(105 / 155)


def test_duty_cycle_zero_duration():
    assert duty_cycle(0, 1000e6) == 0.0


def test_serial_slowdown():
    assert serial_slowdown(105e6, 1000e6) == pytest.approx(1 / 0.895)
    assert serial_slowdown(100e6, 100e6) != math.inf  # swallowed regime caps duty


def test_max_of_n_grows_with_n():
    extras = [
        expected_extra_max_of_n(1.46, 0.105, 1.0, n) for n in (1, 4, 16, 64)
    ]
    assert extras == sorted(extras)
    assert extras[0] >= 0.105 * 0.9  # at least ~1 SMI lands in a 1.46 s run
    assert extras[-1] <= 0.105 * 3   # bounded by a few SMIs


def test_max_of_n_matches_simulator_for_ep():
    """EP = independent ranks + final sync: the analytic E[max] should
    land within a factor of ~2 of the simulated extra."""
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config

    cfg = NasConfig("EP", NasClass.A, 4, 1)
    base = run_nas_config(cfg, smm=0, seed=3)
    noisy = run_nas_config(cfg, smm=2, seed=3)
    simulated_extra = noisy - base
    analytic = expected_extra_max_of_n(base, 0.105, 1.0, 4)
    assert analytic / 2.5 < simulated_extra < analytic * 2.5


def test_coupled_bounds_ordering():
    lo, hi = coupled_utilization_bounds(0.105, 1.0, 16, spread_s=0.4)
    assert 0.0 <= lo <= hi <= 1.0
    assert hi == pytest.approx(0.895)
    assert lo == pytest.approx(1 - 0.505)


def test_coupled_bounds_single_node_degenerates():
    lo, hi = coupled_utilization_bounds(0.105, 1.0, 1, spread_s=0.4)
    assert lo == hi


def test_bt_simulated_utilization_within_bounds():
    """The tightly-synchronized BT's long-SMI utilization must land
    between the clustered-phase union bound and the aligned-phase bound."""
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config

    cfg = NasConfig("BT", NasClass.A, 16, 1)
    base = run_nas_config(cfg, smm=0, seed=3)
    noisy = run_nas_config(cfg, smm=2, seed=3)
    utilization = base / noisy
    lo, hi = coupled_utilization_bounds(0.105, 1.0, 16, spread_s=0.4)
    assert lo * 0.9 <= utilization <= hi * 1.02
