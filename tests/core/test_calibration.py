"""Calibration re-derivation and network-fit reporting."""

import pytest

from repro.core.calibration import CalibrationRow, derive_work_units, fit_network_quality


def test_all_nine_work_constants_rederive_exactly():
    rows = derive_work_units()
    assert len(rows) == 9  # 3 benchmarks × 3 classes
    for r in rows:
        assert r.relative_error < 1e-9


def test_calibration_row_error_math():
    r = CalibrationRow("EP", None, 1.0, derived_work=110.0, stored_work=100.0)
    assert r.relative_error == pytest.approx(0.1)


def test_network_fit_quality_cells():
    out = fit_network_quality(seed=3)
    assert ("FT", 2) in out and ("EP", 4) in out
    for (bench, ranks), (sim, paper) in out.items():
        assert sim > 0 and paper > 0
        if bench in ("FT", "EP"):
            # the cells that constrain the fit agree within ~35 %
            assert abs(sim - paper) / paper < 0.35, (bench, ranks, sim, paper)
