"""Integrity of the transcribed paper tables."""

from repro.apps.nas.params import NasClass
from repro.paperdata import (
    MPI_TABLES,
    TABLE1_BT,
    TABLE2_EP,
    TABLE3_FT,
    TABLE4_EP_HTT,
    TABLE5_FT_HTT,
)

A, B, C = NasClass.A, NasClass.B, NasClass.C


def test_table_shapes():
    assert set(TABLE1_BT) == {1, 4} and set(TABLE2_EP) == {1, 4}
    assert len(TABLE1_BT[1]) == 9          # 3 classes × rows {1,4,16}
    assert len(TABLE2_EP[1]) == 15         # 3 classes × rows {1,2,4,8,16}
    assert len(TABLE3_FT[1]) == 13         # two blank C cells
    assert len(TABLE3_FT[4]) == 15
    assert len(TABLE4_EP_HTT) == 15 and len(TABLE5_FT_HTT) == 15


def test_every_cell_is_a_time_triple():
    for bench, table in MPI_TABLES.items():
        for rpn, cells in table.items():
            for key, (s0, s1, s2) in cells.items():
                assert s0 > 0 and s1 > 0 and s2 > 0, (bench, rpn, key)
                # long SMIs never *help* in the paper's tables
                assert s2 > s0 * 0.99, (bench, rpn, key)


def test_short_smi_cells_are_near_base():
    """Transcription sanity: SMM1 within ±15 % of SMM0 everywhere (the
    worst published outlier is EP-A/16 at +13.5 %)."""
    for bench, table in MPI_TABLES.items():
        for rpn, cells in table.items():
            for key, (s0, s1, _s2) in cells.items():
                assert abs(s1 - s0) / s0 < 0.15, (bench, rpn, key)


def test_known_anchor_values():
    assert TABLE1_BT[1][(A, 1)] == (86.87, 86.89, 96.24)
    assert TABLE2_EP[4][(A, 16)] == (0.37, 0.42, 0.65)
    assert TABLE3_FT[1][(B, 8)] == (26.74, 26.74, 41.52)
    assert TABLE4_EP_HTT[(A, 16)][2] == (0.65, 0.88)
    assert TABLE5_FT_HTT[(C, 16)][2] == (412.11, 392.96)


def test_htt_tables_have_all_smm_classes():
    for table in (TABLE4_EP_HTT, TABLE5_FT_HTT):
        for key, cells in table.items():
            assert set(cells) == {0, 1, 2}, key
            for smm, (h0, h1) in cells.items():
                assert h0 > 0 and h1 > 0
