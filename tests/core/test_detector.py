"""Gap detector: catches SMIs, clean baseline, BIOSBITS accounting."""

import pytest

from repro.core.detector import BIOSBITS_THRESHOLD_NS, GapDetector, host_gap_scan
from repro.core.smi import SmiProfile, SmiSource
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine


def run_detector(machine, window_s=1.0, quantum_ns=50_000):
    det = GapDetector(machine.node, quantum_ns=quantum_ns)
    proc = machine.engine.process(
        det.run(int(window_s * 1e9)), name="detector", gate=machine.node
    )
    machine.engine.run_until(proc.done_event)
    return det.report


def test_clean_machine_has_no_gaps():
    m = make_machine(WYEAST_SPEC)
    rep = run_detector(m, window_s=0.5)
    assert rep.detected == 0
    assert rep.samples > 5000


def test_detects_every_long_smi():
    m = make_machine(WYEAST_SPEC, seed=1)
    SmiSource(m.node, SmiProfile.LONG, 200, seed=4)
    rep = run_detector(m, window_s=1.0)
    entries = m.node.smm.stats.entries
    assert entries >= 4
    assert rep.detected == entries
    # measured widths ≈ the SMI residencies
    for g in rep.gaps:
        assert 95_000_000 < g.width_ns < 120_000_000
    assert rep.biosbits_violations == rep.detected  # all exceed 150 µs


def test_detects_short_smis_above_biosbits_threshold():
    """Even 1–3 ms SMIs are far above the 150 µs BIOSBITS budget — the
    tooling angle: short SMIs are invisible in throughput but glaring to
    a latency detector."""
    m = make_machine(WYEAST_SPEC, seed=2)
    SmiSource(m.node, SmiProfile.SHORT, 100, seed=5)
    rep = run_detector(m, window_s=0.5)
    assert rep.detected >= 3
    assert rep.biosbits_violations == rep.detected
    assert rep.max_gap_ns() < 5_000_000


def test_total_gap_estimates_stolen_time():
    m = make_machine(WYEAST_SPEC, seed=3)
    SmiSource(m.node, SmiProfile.LONG, 500, seed=6)
    rep = run_detector(m, window_s=2.0)
    stolen = m.node.smm.stats.total_ns
    assert rep.total_gap_ns == pytest.approx(stolen, rel=0.1)


def test_threshold_configurable():
    m = make_machine(WYEAST_SPEC, seed=1)
    SmiSource(m.node, SmiProfile.SHORT, 100, seed=7)
    det = GapDetector(m.node, quantum_ns=50_000, threshold_ns=10_000_000)
    proc = m.engine.process(det.run(int(0.5e9)), name="det", gate=m.node)
    m.engine.run_until(proc.done_event)
    assert det.report.detected == 0  # 1-3 ms gaps below a 10 ms threshold


def test_bad_quantum_rejected():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        GapDetector(m.node, quantum_ns=0)


def test_host_gap_scan_runs_on_real_clock():
    rep = host_gap_scan(window_s=0.05)
    assert rep.samples > 100
    assert rep.threshold_ns == BIOSBITS_THRESHOLD_NS
    assert rep.window_ns == 50_000_000
