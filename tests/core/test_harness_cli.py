"""Harness builders and the CLI front end (smallest real invocations)."""

import pytest

from repro.apps.nas.params import NasClass
from repro.cli import main
from repro.harness.common import bench_full, bench_reps
from repro.harness.mpi_tables import table_rows_spec


def test_bench_knobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    monkeypatch.delenv("REPRO_BENCH_REPS", raising=False)
    assert not bench_full()
    assert bench_reps() == 1
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert bench_full()
    assert bench_reps() == 3
    monkeypatch.setenv("REPRO_BENCH_REPS", "6")
    assert bench_reps() == 6


def test_bench_reps_env_validation(monkeypatch):
    """Both REPRO_BENCH_REPS consumers share one validated parser: bad
    input names the variable and the text instead of a bare int() error."""
    from repro.core.experiment import default_reps, reps_from_env

    monkeypatch.setenv("REPRO_BENCH_REPS", "six")
    with pytest.raises(ValueError, match=r"REPRO_BENCH_REPS.*'six'"):
        bench_reps()
    with pytest.raises(ValueError, match=r"REPRO_BENCH_REPS.*'six'"):
        default_reps()
    monkeypatch.setenv("REPRO_BENCH_REPS", "0")
    with pytest.raises(ValueError, match="must be >= 1"):
        reps_from_env()
    monkeypatch.setenv("REPRO_BENCH_REPS", "4")
    assert reps_from_env() == 4
    assert default_reps(fallback=2) == 4
    monkeypatch.delenv("REPRO_BENCH_REPS")
    assert reps_from_env() is None
    assert default_reps(fallback=2) == 2


def test_table_rows_spec_quick_vs_full():
    quick = table_rows_spec("EP", quick=True)
    full = table_rows_spec("EP", quick=False)
    assert {c for c, _ in quick} == {NasClass.A}
    assert {c for c, _ in full} == {NasClass.A, NasClass.B, NasClass.C}
    assert [r for _, r in table_rows_spec("BT", True)] == [1, 4, 16]


def test_cli_calibrate_quick(capsys):
    assert main(["calibrate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "EP.A" in out and "BT.C" in out
    assert "err 0%" in out or "err 0.0%" in out or "err" in out


def test_cli_detect(capsys):
    assert main(["detect", "--window", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "BIOSBITS" in out


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_figure2_renderers():
    """Figure-2 rendering paths on synthetic data (the full build is a
    benchmark, not a unit test)."""
    from repro.analysis.figures import Series
    from repro.harness.figure2 import Figure2Data, render_figure2

    data = Figure2Data(
        long_series=[Series("1cpu", [(100, 500.0), (600, 800.0), (1600, 900.0)])],
        baselines={1: 950.0},
        short_at_100ms={1: 940.0},
    )
    text = render_figure2(data)
    assert "Figure 2" in text and "baselines" in text
    csv = render_figure2(data, csv=True)
    assert csv.splitlines()[0].startswith("interval_ms,")


def test_figure1_renderers():
    from repro.analysis.figures import Series
    from repro.harness.figure1 import Figure1Data, render_figure1

    data = Figure1Data(
        left={
            "CacheUnfriendly": [Series("4cpu", [(50, 90.0), (1500, 30.0)])],
            "CacheFriendly": [Series("4cpu", [(50, 14.0), (1500, 4.8)])],
        },
        right={
            "CacheUnfriendly": [Series("run1", [(1, 390.0), (8, 90.0)])],
            "CacheFriendly": [Series("run1", [(1, 60.0), (8, 13.0)])],
        },
        baselines={"CacheUnfriendly": {4: 30.0}, "CacheFriendly": {4: 4.6}},
    )
    text = render_figure1(data)
    assert "Figure 1" in text
    csv = render_figure1(data, csv=True)
    assert "interval_ms" in csv and "cpus" in csv
