"""SMI sources: duty cycle regimes, swallowed ticks, driver model."""

import pytest

from repro.core.driver import BlackboxSmiDriver
from repro.core.smi import SmiDurations, SmiProfile, SmiSource
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def run_with_source(durations, interval, work_s=2.0, seed=3):
    m = make_machine(WYEAST_SPEC, seed=seed)
    src = SmiSource(m.node, durations, interval, seed=seed)

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * work_s)

    t = m.scheduler.spawn(body, "w", REG)
    m.engine.run_until(t.proc.done_event)
    return m, src, t.finished_ns / 1e9


def test_profiles_match_paper_classes():
    assert SmiProfile.SHORT.dmin_ns == 1_000_000 and SmiProfile.SHORT.dmax_ns == 3_000_000
    assert SmiProfile.LONG.dmin_ns == 100_000_000 and SmiProfile.LONG.dmax_ns == 110_000_000
    assert SmiProfile.by_index(0) is None
    assert SmiProfile.by_index(2) is SmiProfile.LONG
    assert SmiProfile.label(1) == "SMM 1"


def test_durations_sampled_in_range():
    m, src, _ = run_with_source(SmiProfile.LONG, 500)
    for d in m.node.smm.stats.durations_ns:
        assert 100_000_000 <= d <= 110_000_000 + 10_000


def test_none_profile_is_inert():
    m = make_machine(WYEAST_SPEC)
    src = SmiSource(m.node, None, 1000)
    assert src.proc is None
    assert src.expected_duty_cycle == 0.0


def test_free_running_regime_slowdown():
    """interval ≫ duration: slowdown ≈ 1/(1 − d/T)."""
    _, src, t = run_with_source(SmiProfile.LONG, 1000)
    assert 1.08 < t / 2.0 < 1.15
    assert src.swallowed_ticks == 0
    assert src.expected_duty_cycle == pytest.approx(0.105, rel=0.01)


def test_swallowed_tick_regime_slowdown():
    """interval < duration: useful fraction = T/(T+d) ⇒ ~3.1× at 50 ms."""
    _, src, t = run_with_source(SmiProfile.LONG, 50)
    assert 2.7 < t / 2.0 < 3.6
    assert src.swallowed_ticks > 10


def test_short_smis_invisible():
    _, _, t = run_with_source(SmiProfile.SHORT, 1000)
    assert abs(t - 2.0) / 2.0 < 0.01


def test_stop_silences_source():
    m = make_machine(WYEAST_SPEC, seed=1)
    src = SmiSource(m.node, SmiProfile.SHORT, 100, seed=1)

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 0.5)
        src.stop()
        before = m.node.smm.stats.entries
        yield from task.compute(WYEAST_SPEC.base_hz * 0.5)
        return before

    t = m.scheduler.spawn(body, "w", REG)
    m.engine.run_until(t.proc.done_event)
    assert m.node.smm.stats.entries == t.proc.result


def test_seed_controls_phase_and_jitter():
    _, a, ta = run_with_source(SmiProfile.LONG, 700, seed=5)
    _, b, tb = run_with_source(SmiProfile.LONG, 700, seed=5)
    _, c, tc = run_with_source(SmiProfile.LONG, 700, seed=6)
    assert ta == tb
    assert ta != tc


def test_bad_interval_rejected():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        SmiSource(m.node, SmiProfile.SHORT, 0)


def test_bad_durations_rejected():
    with pytest.raises(ValueError):
        SmiDurations("x", 0, 10)
    with pytest.raises(ValueError):
        SmiDurations("x", 10, 5)


def test_driver_lifecycle_and_stats():
    m = make_machine(WYEAST_SPEC, seed=1)
    drv = BlackboxSmiDriver(m.node)
    drv.configure(smm_class=2, interval_jiffies=300, seed=2)
    drv.start()
    assert drv.loaded
    with pytest.raises(RuntimeError):
        drv.start()
    with pytest.raises(RuntimeError):
        drv.configure(smm_class=1)

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 1.0)

    t = m.scheduler.spawn(body, "w", REG)
    m.engine.run_until(t.proc.done_event)
    drv.stop()
    stats = drv.read_stats()
    assert stats.smi_count >= 2
    assert 100e6 < stats.mean_latency_ns < 112e6
    assert stats.min_latency_ns <= stats.mean_latency_ns <= stats.max_latency_ns


def test_driver_smm0_is_silent():
    m = make_machine(WYEAST_SPEC)
    drv = BlackboxSmiDriver(m.node)
    drv.configure(smm_class=0)
    drv.start()
    assert drv.read_stats().smi_count == 0
    drv.stop()
