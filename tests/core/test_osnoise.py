"""OS-noise sources and the SMI-vs-OS-noise comparison."""

import pytest

from repro.core.osnoise import OsNoiseSource, equal_duty_comparison
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def test_validation():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        OsNoiseSource(m.node, 0, 1000)
    with pytest.raises(ValueError):
        OsNoiseSource(m.node, 1000, 0)


def test_duty_cycle_property():
    m = make_machine(WYEAST_SPEC)
    src = OsNoiseSource(m.node, 10_000_000, 100_000_000, seed=1)
    assert src.duty_cycle == pytest.approx(0.1)
    src.stop()


def test_injections_happen_per_cpu():
    m = make_machine(WYEAST_SPEC, seed=1)
    m.sysfs.set_htt(False)  # 4 CPUs
    src = OsNoiseSource(m.node, 1_000_000, 100_000_000, seed=1)

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 0.5)

    t = m.scheduler.spawn(body, "w", REG)
    m.engine.run_until(t.proc.done_event)
    src.stop()
    # ~5 rounds × 4 CPUs
    assert src.injections >= 12


def test_os_noise_slows_one_cpu_not_all():
    """A single-CPU victim pinned away from its noise... OS noise on CPU0
    barely touches a worker pinned to CPU3."""
    m = make_machine(WYEAST_SPEC, seed=2)
    m.sysfs.set_htt(False)
    work = WYEAST_SPEC.base_hz * 0.5

    def body(task):
        yield from task.compute(work)

    t = m.scheduler.spawn(body, "w", REG, affinity={3})
    # heavy noise, but only on cpu0
    src = OsNoiseSource(m.node, 50_000_000, 100_000_000, seed=2, per_cpu=False)
    # per_cpu=False spawns unpinned noise; scheduler sends it to idle CPUs
    m.engine.run_until(t.proc.done_event)
    src.stop()
    assert t.finished_ns / 1e9 == pytest.approx(0.5, rel=0.02)


def test_equal_duty_smm_hurts_more_than_os_noise():
    """§II.C: at identical duty cycles, with idle headroom available, the
    OS routes schedulable noise onto idle cores (mostly absorbed) while
    the SMM freeze stops every core — SMM is strictly more harmful."""
    res = equal_duty_comparison(duty=0.105, n_phases=8, phase_work_s=0.05, seed=3)
    slow_os = res["os"] / res["clean"]
    slow_smm = res["smm"] / res["clean"]
    assert slow_smm > 1.05          # ≈ the duty cycle, unabsorbable
    assert slow_os < slow_smm       # schedulable noise partially absorbed
    assert slow_os < 1.08           # mostly routed to the idle cores
