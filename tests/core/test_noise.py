"""Noise taxonomy and Ferreira-style absorption/amplification."""

import pytest

from repro.core.noise import (
    DAEMON,
    OS_TICK,
    SMI_LONG_PULSE,
    NoisePulse,
    absorption_experiment,
)


def test_pulse_validation():
    with pytest.raises(ValueError):
        NoisePulse("bad", 1000, mechanism="quantum")


def test_taxonomy_constants():
    assert OS_TICK.mechanism == "task"
    assert DAEMON.mechanism == "task"
    assert SMI_LONG_PULSE.mechanism == "smm"
    assert SMI_LONG_PULSE.duration_ns == 105_000_000


def test_smi_pulse_fully_retained():
    """An SMM pulse freezes everyone — no slack can absorb it; retained
    fraction ≈ 1 regardless of where it lands."""
    f = absorption_experiment(SMI_LONG_PULSE, offset_ns=30_000_000)
    assert 0.9 < f < 1.2


def test_task_pulse_partially_absorbed():
    """A one-CPU noise task steals from a single worker; with 4 workers on
    4 cores the others keep running and the barrier hides part of it —
    Ferreira et al.'s absorption."""
    pulse = NoisePulse("daemon-long", 105_000_000, mechanism="task")
    f_task = absorption_experiment(pulse, offset_ns=30_000_000)
    f_smm = absorption_experiment(SMI_LONG_PULSE, offset_ns=30_000_000)
    assert f_task < f_smm
    assert f_task < 0.9


def test_pulse_after_completion_is_fully_absorbed():
    """Noise landing after the phases end costs nothing."""
    f = absorption_experiment(SMI_LONG_PULSE, offset_ns=10_000_000_000)
    assert abs(f) < 0.05


def test_os_tick_negligible():
    # A 10 µs tick costs at most a few multiples of itself (sharing slows
    # the victim 2×, plus scheduling slack) on a 200 ms run — microseconds.
    f = absorption_experiment(OS_TICK, offset_ns=30_000_000)
    assert abs(f) <= 3.0
