"""The sampling-profiler model: SMM's distortion of tool output."""

import pytest

from repro.core.profiler import SamplingProfiler, profile_views
from repro.core.smi import SmiProfile, SmiSource
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def run(with_smi: bool, seed=13, work_s=1.0):
    m = make_machine(WYEAST_SPEC, seed=seed)
    if with_smi:
        SmiSource(m.node, SmiProfile.LONG, 300, seed=seed)
    prof = SamplingProfiler(m.node, period_ns=1_000_000)
    prof.start(int(3e9))

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * work_s)

    t = m.scheduler.spawn(body, "victim", REG)
    m.engine.run_until(t.proc.done_event)
    return m, prof, t


def test_clean_profile_matches_truth():
    m, prof, t = run(with_smi=False)
    view = prof.view()
    assert view.seconds_by_task["victim"] == pytest.approx(1.0, rel=0.02)
    assert prof.lost_ticks == 0 or prof.ticks > 0


def test_smm_swallows_sampling_ticks():
    """Ticks due during SMM coalesce: the profiler under-observes by
    roughly the SMM duty cycle — stolen time vanishes from the profile."""
    m, prof, t = run(with_smi=True)
    wall_s = t.finished_ns / 1e9
    smm_s = m.node.smm.stats.total_ns / 1e9
    sampled_s = prof.view().seconds_by_task["victim"]
    # sampling sees ~the true service time, NOT the wall occupancy
    assert sampled_s == pytest.approx(wall_s - smm_s, rel=0.1)
    assert sampled_s < wall_s * 0.8


def test_three_tools_three_answers():
    """kernel-cputime (includes stolen) vs sampling (misses stolen) vs
    ground truth — the §V warning in one assertion."""
    m, prof, t = run(with_smi=True)
    kernel, truth = profile_views(m.node)
    sampled = prof.view().seconds_by_task["victim"]
    k = kernel.seconds_by_task["victim"]
    tr = truth.seconds_by_task["victim"]
    assert k > tr  # cputime inflated by stolen time
    assert abs(sampled - tr) / tr < 0.1  # sampler ≈ truth here (single task)
    assert k == pytest.approx(t.finished_ns / 1e9, rel=0.02)


def test_shares_split_across_coresidents():
    m = make_machine(WYEAST_SPEC, seed=3)
    prof = SamplingProfiler(m.node, period_ns=500_000)
    prof.start(int(2e9))

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 0.5)

    a = m.scheduler.spawn(body, "a", REG, affinity={0})
    b = m.scheduler.spawn(body, "b", REG, affinity={0})
    m.engine.run_until(b.proc.done_event)
    view = prof.view()
    assert view.share("a") == pytest.approx(0.5, abs=0.05)


def test_bad_period_rejected():
    m = make_machine(WYEAST_SPEC)
    with pytest.raises(ValueError):
        SamplingProfiler(m.node, period_ns=0)


def test_restart_clears_previous_window():
    """Regression: start() must reset samples/ticks — a reused profiler
    previously double-counted the first window into the second."""
    m = make_machine(WYEAST_SPEC, seed=5)
    prof = SamplingProfiler(m.node, period_ns=1_000_000)
    prof.start(int(1e9))

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 0.5)

    t = m.scheduler.spawn(body, "first", REG)
    m.engine.run_until(t.proc.done_event)
    first_ticks = prof.ticks
    assert first_ticks > 0 and prof.samples

    prof.start(int(1e9))
    assert prof.ticks == 0
    assert prof.samples == {}
    t2 = m.scheduler.spawn(body, "second", REG)
    m.engine.run_until(t2.proc.done_event)
    view = prof.view()
    assert "first" not in view.seconds_by_task
    assert view.seconds_by_task["second"] == pytest.approx(0.5, rel=0.05)
