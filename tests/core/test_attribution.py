"""Attribution: the kernel's lie about SMM time, quantified."""

import pytest

from repro.core.attribution import attribute
from repro.core.smi import SmiProfile, SmiSource
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def run_machine(with_smi: bool, n_tasks: int = 2, work_s: float = 1.0, seed: int = 4):
    m = make_machine(WYEAST_SPEC, seed=seed)
    if with_smi:
        SmiSource(m.node, SmiProfile.LONG, 300, seed=seed)
    tasks = []

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * work_s)

    for i in range(n_tasks):
        tasks.append(m.scheduler.spawn(body, f"t{i}", REG))
    done = m.engine.event("all")
    remaining = {"n": n_tasks}

    def on_done(_):
        remaining["n"] -= 1
        if remaining["n"] == 0 and not done.triggered:
            done.succeed()

    for t in tasks:
        t.proc.done_event.add_callback(on_done)
    m.engine.run_until(done)
    return m


def test_clean_run_has_zero_stolen():
    m = run_machine(with_smi=False)
    rep = attribute(m.node)
    assert rep.total_stolen_s == 0.0
    assert rep.max_share_error() == pytest.approx(0.0, abs=1e-12)
    assert rep.total_kernel_s == pytest.approx(rep.total_true_s)


def test_kernel_time_equals_true_plus_stolen():
    m = run_machine(with_smi=True)
    rep = attribute(m.node)
    assert rep.conservation_error_s() < 1e-9
    assert rep.total_stolen_s > 0.1
    # kernel over-reports by roughly the duty cycle (105/300 ≈ 35 %)
    inflation = rep.total_stolen_s / rep.total_true_s
    assert 0.2 < inflation < 0.55


def test_stolen_matches_smm_residency_overlap():
    """Stolen time ≤ total SMM residency × busy CPUs."""
    m = run_machine(with_smi=True, n_tasks=2)
    rep = attribute(m.node)
    assert rep.total_stolen_s <= 2 * rep.smm_total_s + 1e-6
    assert rep.total_stolen_s >= 0.5 * rep.smm_total_s


def test_per_task_inflation_reported():
    m = run_machine(with_smi=True)
    rep = attribute(m.node)
    for t in rep.tasks:
        assert t.kernel_s == pytest.approx(t.true_s + t.stolen_s)
        assert t.inflation_pct > 5.0


def test_accounting_conservation_via_scheduler():
    m = run_machine(with_smi=True, n_tasks=3)
    assert m.scheduler.accounting.conservation_error() < 1.0  # ns


def test_tool_share_error_when_victims_differ():
    """A task that runs only in quiet periods is under-charged relative
    to one straddling the SMIs — the tool mis-ranks them."""
    m = make_machine(WYEAST_SPEC, seed=9)

    def early(task):  # finishes before the first SMI
        yield from task.compute(WYEAST_SPEC.base_hz * 0.2)

    def late(task):
        yield from task.sleep(300_000_000)
        yield from task.compute(WYEAST_SPEC.base_hz * 0.2)

    a = m.scheduler.spawn(early, "early", REG, affinity={0})
    b = m.scheduler.spawn(late, "late", REG, affinity={1})
    m.engine.schedule(400_000_000, m.node.smm.trigger, 105_000_000)
    m.engine.run()
    rep = attribute(m.node)
    assert rep.max_share_error() > 0.05
    by = {t.name: t for t in rep.tasks}
    assert by["early"].stolen_s == 0.0
    assert by["late"].stolen_s > 0.09
