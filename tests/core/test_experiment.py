"""Experiment methodology machinery."""

import pytest

from repro.core.experiment import (
    ExperimentCase,
    Measurement,
    run_matrix,
    run_repeated,
    default_reps,
)


def test_measurement_stats():
    m = Measurement([1.0, 2.0, 3.0])
    assert m.mean == 2.0
    assert m.min == 1.0 and m.max == 3.0
    assert m.std == pytest.approx(1.0)


def test_run_repeated_distinct_seeds():
    seeds = []
    m = run_repeated(lambda s: (seeds.append(s), float(s))[1], reps=4, base_seed=10)
    assert len(set(seeds)) == 4
    assert m.mean == sum(seeds) / 4


def test_run_repeated_infeasible_short_circuits():
    calls = []
    m = run_repeated(lambda s: (calls.append(s), None)[1], reps=5)
    assert m is None
    assert len(calls) == 1


def test_run_matrix_full_protocol():
    cases = [ExperimentCase("a"), ExperimentCase("b", {"x": 1})]
    log = []

    def runner(case, smm, seed):
        log.append((case.name, smm))
        if case.name == "b" and smm == 2:
            return None
        return 10.0 + smm + (0.1 if case.name == "b" else 0.0)

    results = run_matrix(cases, runner, smm_classes=(0, 1, 2), reps=2)
    assert len(results) == 2
    r_a = results[0]
    assert r_a.base() == pytest.approx(10.0)
    assert r_a.delta(2) == pytest.approx(2.0)
    assert r_a.pct(1) == pytest.approx(10.0)
    r_b = results[1]
    assert r_b.cells[2] is None
    assert r_b.delta(2) is None and r_b.pct(2) is None
    # every (case, smm) measured (reps collapsed for infeasible cells)
    assert log.count(("a", 0)) == 2
    assert log.count(("b", 2)) == 1


def test_default_reps_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_REPS", raising=False)
    assert default_reps(3) == 3
    monkeypatch.setenv("REPRO_BENCH_REPS", "6")
    assert default_reps(3) == 6
    monkeypatch.setenv("REPRO_BENCH_REPS", "0")
    with pytest.raises(ValueError):
        default_reps()
