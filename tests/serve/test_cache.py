"""Cache integrity: every read re-verifies, every failure heals.

The ISSUE's acceptance bar for the cache is explicit: truncated,
bit-flipped, and schema-mismatched payloads must be *detected* on read
(digest re-verification), *counted* (``serve.cache.corrupt``),
*evicted*, and transparently *recomputed*.  These tests damage real
entries on disk in each of those ways and assert all four behaviours.
"""

import json
import os

from repro.obs import MetricsRegistry
from repro.runx import CellSpec
from repro.serve.cache import (
    CACHE_SCHEMA, ResultCache, calibration_sha256, value_sha256)

SPEC = CellSpec(id="syn-0", fn="synthetic", params={"value": 3}, base_seed=7)
VALUE = {"values": [1.0, 2.0], "mean": 1.5}


def _cache(tmp_path):
    metrics = MetricsRegistry()
    return ResultCache(str(tmp_path / "cache"), metrics=metrics), metrics


def _counter(metrics, name):
    return metrics.counter(name, "").value


def test_round_trip_and_hit_counting(tmp_path):
    cache, metrics = _cache(tmp_path)
    assert cache.get(SPEC) is None
    path = cache.put(SPEC, VALUE)
    assert os.path.exists(path)
    assert cache.get(SPEC) == VALUE
    assert len(cache) == 1
    assert _counter(metrics, "serve.cache.hits") == 1
    assert _counter(metrics, "serve.cache.misses") == 1
    assert _counter(metrics, "serve.cache.writes") == 1


def test_provenance_recorded(tmp_path):
    cache, _ = _cache(tmp_path)
    cache.put(SPEC, VALUE, provenance={"attempts": 2})
    value, prov = cache.get_with_provenance(SPEC)
    assert value == VALUE
    assert prov["attempts"] == 2
    assert "version" in prov and "created_unix" in prov


def test_truncated_entry_detected_evicted_recomputed(tmp_path):
    cache, metrics = _cache(tmp_path)
    path = cache.put(SPEC, VALUE)
    blob = open(path, encoding="utf-8").read()
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(blob[: len(blob) // 2])  # torn mid-envelope
    assert cache.get(SPEC) is None
    assert not os.path.exists(path), "corrupt entry must be evicted"
    assert _counter(metrics, "serve.cache.corrupt") == 1
    # the recompute's put heals the cache
    cache.put(SPEC, VALUE)
    assert cache.get(SPEC) == VALUE


def test_bit_flip_in_payload_detected(tmp_path):
    cache, metrics = _cache(tmp_path)
    path = cache.put(SPEC, VALUE)
    env = json.load(open(path, encoding="utf-8"))
    env["value"]["mean"] = 99.0  # flipped bits, checksum now wrong
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(env, fp)
    assert cache.get(SPEC) is None
    assert not os.path.exists(path)
    assert _counter(metrics, "serve.cache.corrupt") == 1


def test_schema_mismatch_detected(tmp_path):
    cache, metrics = _cache(tmp_path)
    path = cache.put(SPEC, VALUE)
    env = json.load(open(path, encoding="utf-8"))
    env["schema"] = CACHE_SCHEMA + 1
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(env, fp)
    assert cache.get(SPEC) is None
    assert _counter(metrics, "serve.cache.corrupt") == 1


def test_mislabeled_spec_detected(tmp_path):
    """An envelope whose spec re-digests to a different filename is
    somebody else's result wearing our name — never serve it."""
    cache, metrics = _cache(tmp_path)
    path = cache.put(SPEC, VALUE)
    env = json.load(open(path, encoding="utf-8"))
    env["spec"]["params"] = {"value": 4}  # digest no longer matches
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(env, fp)
    assert cache.get(SPEC) is None
    assert _counter(metrics, "serve.cache.corrupt") == 1


def test_calibration_drift_is_stale_not_corrupt(tmp_path):
    cache, metrics = _cache(tmp_path)
    path = cache.put(SPEC, VALUE)
    env = json.load(open(path, encoding="utf-8"))
    env["calibration_sha256"] = "0" * 64
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(env, fp)
    assert cache.get(SPEC) is None
    assert not os.path.exists(path)
    assert _counter(metrics, "serve.cache.stale") == 1
    assert _counter(metrics, "serve.cache.corrupt") == 0


def test_value_sha256_is_order_insensitive():
    assert value_sha256({"a": 1, "b": 2}) == value_sha256({"b": 2, "a": 1})
    assert value_sha256({"a": 1}) != value_sha256({"a": 2})


def test_calibration_sha256_stable():
    assert calibration_sha256() == calibration_sha256()
    assert len(calibration_sha256()) == 64


def test_cache_sharded_by_digest_prefix(tmp_path):
    cache, _ = _cache(tmp_path)
    digest = SPEC.digest()
    assert cache.path_for(digest).endswith(
        os.path.join(digest[:2], digest + ".json"))


def _specs(n):
    return [CellSpec(id=f"syn-{i}", fn="synthetic",
                     params={"value": float(i)}, base_seed=7 + i)
            for i in range(n)]


def test_lru_cap_evicts_coldest_and_counts(tmp_path):
    metrics = MetricsRegistry()
    cache = ResultCache(str(tmp_path / "cache"), metrics=metrics,
                        max_entries=3)
    specs = _specs(5)
    for spec in specs:
        cache.put(spec, VALUE)
    assert len(cache) == 3
    assert cache.evictions == 2
    assert _counter(metrics, "serve.cache.evictions") == 2
    # The two oldest writes are gone from disk, the newest three remain.
    assert cache.get(specs[0]) is None
    assert cache.get(specs[1]) is None
    for spec in specs[2:]:
        assert cache.get(spec) == VALUE


def test_lru_hit_refreshes_recency(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"), max_entries=2)
    a, b, c = _specs(3)
    cache.put(a, VALUE)
    cache.put(b, VALUE)
    assert cache.get(a) == VALUE  # touch a: b is now the coldest
    cache.put(c, VALUE)
    assert cache.get(b) is None, "the coldest entry must be the victim"
    assert cache.get(a) == VALUE
    assert cache.get(c) == VALUE


def test_lru_cap_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_CACHE_MAX", "2")
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.max_entries == 2
    for spec in _specs(4):
        cache.put(spec, VALUE)
    assert len(cache) == 2 and cache.evictions == 2


def test_lru_index_seeded_from_disk_across_restarts(tmp_path):
    """A restarted daemon inherits the on-disk recency (mtime order), so
    its first eviction still removes the coldest entry."""
    root = str(tmp_path / "cache")
    unbounded = ResultCache(root)
    specs = _specs(3)
    for i, spec in enumerate(specs):
        path = unbounded.put(spec, VALUE)
        os.utime(path, (1000.0 + i, 1000.0 + i))  # deterministic mtimes
    bounded = ResultCache(root, max_entries=3)
    assert len(bounded) == 3
    bounded.put(_specs(4)[3], VALUE)
    assert bounded.get(specs[0]) is None, \
        "the oldest-mtime entry must be evicted first after a restart"
    assert bounded.get(specs[1]) == VALUE


def test_unbounded_by_default(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.max_entries == 0
    for spec in _specs(10):
        cache.put(spec, VALUE)
    assert len(cache) == 10 and cache.evictions == 0
