"""End-to-end daemon behaviour over a real unix socket and real worker
subprocesses: caching, coalescing, retry-on-kill, quarantine, replay,
backpressure, drain, and the single-daemon lock.

Cells are ``synthetic`` (pure function of params + seed, no simulation),
so every test's assertion about byte-identity is exact, and chaos plans
(``$REPRO_CHAOS_PLAN``) inject the infrastructure failures.
"""

import asyncio
import json
import os

import pytest

from repro.runx import CellSpec, LockHeldError
from repro.runx.cells import run_cell
from repro.runx.chaos import PLAN_ENV, FaultPlan, FaultRule
from repro.serve import ServeClient, ServeConfig, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.queue import DurableQueue


def _spec(i=0, **params):
    return CellSpec(id=f"syn-{i}", fn="synthetic",
                    params={"value": float(i), **params}, base_seed=100 + i)


def _cfg(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("timeout_s", 60.0)
    kw.setdefault("hb_timeout_s", 10.0)
    kw.setdefault("restart_backoff_s", 0.05)
    return ServeConfig(state_dir=str(tmp_path / "state"), **kw)


async def _call(client, fn, *args, **kw):
    """Run a blocking client call off the event loop thread."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, lambda: fn(*args, **kw))


def _submit_records(specs):
    return [s.to_record() for s in specs]


def _counter(daemon, name):
    return daemon.metrics.counter(name).value


def test_submit_computes_then_serves_from_cache(tmp_path):
    cfg = _cfg(tmp_path, workers=2)
    specs = [_spec(i, reps=2) for i in range(4)]

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        rep1 = await _call(client, client.submit, _submit_records(specs))
        assert rep1["stats"] == {"cached": 0, "coalesced": 0,
                                 "submitted": 4, "quarantined": 0}
        assert all(c["status"] == "ok" for c in rep1["cells"])
        # the values are exactly what an in-process run produces
        for spec, cell in zip(specs, rep1["cells"]):
            assert cell["value"] == run_cell(
                spec.fn, spec.params, spec.base_seed)
        completed = _counter(daemon, "serve.jobs.completed")
        rep2 = await _call(client, client.submit, _submit_records(specs))
        assert rep2["stats"]["cached"] == 4
        assert _counter(daemon, "serve.jobs.completed") == completed, \
            "a fully cached resubmission must not recompute anything"
        assert ([c["value"] for c in rep1["cells"]]
                == [c["value"] for c in rep2["cells"]])
        await daemon.drain()

    asyncio.run(scenario())


def test_identical_inflight_submissions_coalesce(tmp_path):
    cfg = _cfg(tmp_path)
    spec = _spec(0, sleep_s=0.8)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        a = asyncio.ensure_future(
            _call(client, client.submit, _submit_records([spec])))
        # second identical submission lands while the first computes
        await asyncio.sleep(0.2)
        b = asyncio.ensure_future(
            _call(client, client.submit, _submit_records([spec])))
        rep_a, rep_b = await asyncio.gather(a, b)
        stats = [rep_a["stats"], rep_b["stats"]]
        assert sorted(s["submitted"] for s in stats) == [0, 1]
        assert sorted(s["coalesced"] for s in stats) == [0, 1]
        assert rep_a["cells"][0]["value"] == rep_b["cells"][0]["value"]
        assert _counter(daemon, "serve.jobs.completed") == 1
        await daemon.drain()

    asyncio.run(scenario())


def test_killed_worker_retried_same_seed_byte_identical(tmp_path, monkeypatch):
    """Chaos SIGKILLs the worker on attempt 0; the retry must succeed
    and — because serve retries reuse the same seed — produce exactly
    the value an uninterrupted run would have."""
    spec = _spec(0, reps=3)
    plan = tmp_path / "plan.json"
    FaultPlan([FaultRule(match=spec.id, fault="kill",
                         attempts=(0,))]).write(str(plan))
    monkeypatch.setenv(PLAN_ENV, str(plan))
    cfg = _cfg(tmp_path)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        rep = await _call(client, client.submit, _submit_records([spec]))
        cell = rep["cells"][0]
        assert cell["status"] == "ok"
        assert cell["attempts"] == 2
        assert cell["value"] == run_cell(spec.fn, spec.params, spec.base_seed)
        assert _counter(daemon, "serve.jobs.requeued") == 1
        assert _counter(daemon, "serve.workers.restarts") >= 1
        await daemon.drain()

    asyncio.run(scenario())


def test_hung_cell_killed_by_watchdog_then_retried(tmp_path, monkeypatch):
    plan = tmp_path / "plan.json"
    spec = _spec(0)
    FaultPlan([FaultRule(match=spec.id, fault="hang", attempts=(0,),
                         hang_s=60.0)]).write(str(plan))
    monkeypatch.setenv(PLAN_ENV, str(plan))
    cfg = _cfg(tmp_path, timeout_s=2.0, hb_timeout_s=5.0)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        rep = await _call(client, client.submit, _submit_records([spec]))
        assert rep["cells"][0]["status"] == "ok"
        assert rep["cells"][0]["attempts"] == 2
        assert _counter(daemon, "serve.jobs.timeouts") == 1
        await daemon.drain()

    asyncio.run(scenario())


def test_poisoned_cell_quarantined_without_killing_the_pool(tmp_path):
    cfg = _cfg(tmp_path, max_attempts=2)
    bad = CellSpec(id="bad", fn="synthetic",
                   params={"raise": "boom"}, base_seed=1)
    good = _spec(1)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        rep = await _call(client, client.submit,
                          _submit_records([bad, good]))
        by_id = {c["id"]: c for c in rep["cells"]}
        assert by_id["bad"]["status"] == "quarantined"
        assert by_id["bad"]["attempts"] == 2
        assert "boom" in by_id["bad"]["error"]
        assert by_id["syn-1"]["status"] == "ok", \
            "a poisoned cell must not take the pool down with it"
        # resubmission answers from the circuit breaker, no recompute
        requeued = _counter(daemon, "serve.jobs.requeued")
        rep2 = await _call(client, client.submit, _submit_records([bad]))
        assert rep2["cells"][0]["status"] == "quarantined"
        assert rep2["stats"]["quarantined"] == 1
        assert _counter(daemon, "serve.jobs.requeued") == requeued
        await daemon.drain()
        # ... and the quarantine record survives the daemon
        state = DurableQueue(
            os.path.join(cfg.state_dir, "queue.jsonl")).replay()
        assert bad.digest() in state.quarantined

    asyncio.run(scenario())


def test_saturated_submit_refused_with_retry_after(tmp_path):
    cfg = _cfg(tmp_path, max_pending=1, est_cell_s=3.0)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        slow = _spec(0, sleep_s=1.5)
        await _call(client, client.submit, _submit_records([slow]),
                    wait=False)
        with pytest.raises(ServeError) as exc:
            await _call(client, client.submit,
                        _submit_records([_spec(1), _spec(2)]))
        assert exc.value.code == "saturated"
        assert exc.value.retry_after and exc.value.retry_after > 0
        assert _counter(daemon, "serve.rejected.saturated") == 1
        # nothing about the refused submit was accepted
        assert len(daemon._inflight) == 1
        await daemon.drain()

    asyncio.run(scenario())


def test_draining_daemon_refuses_new_work_then_finishes(tmp_path):
    cfg = _cfg(tmp_path)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        slow = _spec(0, sleep_s=1.2)
        await _call(client, client.submit, _submit_records([slow]),
                    wait=False)
        rep = await _call(client, client.drain)
        assert rep["draining"] is True
        with pytest.raises(ServeError) as exc:
            await _call(client, client.submit, _submit_records([_spec(1)]))
        assert exc.value.code == "draining"
        await daemon.wait_stopped()
        # the in-flight cell was finished, cached, and acked
        assert daemon.cache.get(slow) is not None
        state = DurableQueue(
            os.path.join(cfg.state_dir, "queue.jsonl")).replay()
        assert state.pending == {}

    asyncio.run(scenario())


def test_boot_replays_accepted_jobs_from_journal(tmp_path):
    """Jobs fsync'd by a daemon that was kill -9'd are owed: a fresh
    daemon on the same state dir must complete them."""
    cfg = _cfg(tmp_path, workers=2)
    specs = [_spec(i) for i in range(3)]
    os.makedirs(cfg.state_dir)
    journal = DurableQueue(os.path.join(cfg.state_dir, "queue.jsonl"))
    for s in specs:
        journal.record_job(s.digest(), s.to_record())

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        assert _counter(daemon, "serve.jobs.replayed") == 3
        # a waiting resubmission coalesces onto the replayed jobs
        client = ServeClient(socket_path=cfg.resolved_socket())
        rep = await _call(client, client.submit, _submit_records(specs))
        assert all(c["status"] == "ok" for c in rep["cells"])
        assert rep["stats"]["submitted"] == 0
        for spec, cell in zip(specs, rep["cells"]):
            assert cell["value"] == run_cell(
                spec.fn, spec.params, spec.base_seed)
        await daemon.drain()
        state = journal.replay()
        assert state.pending == {}

    asyncio.run(scenario())


def test_boot_replay_completes_from_cache_without_recompute(tmp_path):
    """The write-then-ack crash window: cache entry written, done record
    not.  Replay must ack from the cache, not recompute."""
    cfg = _cfg(tmp_path)
    spec = _spec(0)
    os.makedirs(cfg.state_dir)
    journal = DurableQueue(os.path.join(cfg.state_dir, "queue.jsonl"))
    journal.record_job(spec.digest(), spec.to_record())
    from repro.serve.cache import ResultCache

    ResultCache(os.path.join(cfg.state_dir, "cache")).put(
        spec, run_cell(spec.fn, spec.params, spec.base_seed))

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        assert _counter(daemon, "serve.jobs.replayed") == 0
        assert _counter(daemon, "serve.jobs.completed") == 0
        client = ServeClient(socket_path=cfg.resolved_socket())
        rep = await _call(client, client.submit, _submit_records([spec]))
        assert rep["cells"][0]["status"] == "ok"
        assert rep["stats"]["cached"] == 1
        await daemon.drain()

    asyncio.run(scenario())


def test_second_daemon_on_same_state_dir_fails_fast(tmp_path):
    cfg = _cfg(tmp_path)

    async def scenario():
        first = ServeDaemon(cfg)
        await first.start()
        second = ServeDaemon(ServeConfig(
            state_dir=cfg.state_dir,
            socket_path=str(tmp_path / "other.sock")))
        with pytest.raises(LockHeldError):
            await second.start()
        await first.drain()

    asyncio.run(scenario())


def test_malformed_submissions_rejected_typed(tmp_path):
    cfg = _cfg(tmp_path)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        with pytest.raises(ServeError) as exc:
            await _call(client, client.submit, [])
        assert exc.value.code == "bad-request"
        with pytest.raises(ServeError) as exc:
            await _call(client, client.submit, [{"fn": "synthetic"}])
        assert exc.value.code == "bad-request"
        with pytest.raises(ServeError) as exc:
            await _call(client, client.request, {"op": "frobnicate"})
        assert exc.value.code == "bad-request"
        await daemon.drain()

    asyncio.run(scenario())


def test_status_and_metrics_ops(tmp_path):
    cfg = _cfg(tmp_path, workers=2)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        await _call(client, client.submit, _submit_records([_spec(0)]))
        st = await _call(client, client.status)
        assert st["inflight"] == 0 and not st["draining"]
        assert len(st["workers"]) == 2
        assert st["cache"]["entries"] == 1
        assert st["counters"]["serve.jobs.completed"] == 1
        prom = await _call(client, client.metrics)
        assert "repro_serve_jobs_completed_total 1" in prom
        await daemon.drain()

    asyncio.run(scenario())
