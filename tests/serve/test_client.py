"""Client retry discipline: decorrelated jitter, server floors, typed
retryability.  Everything is driven with injected ``rng``/``sleep`` so
the asserted schedules are exact — no wall-clock, no sockets."""

import pytest

from repro.serve.client import ServeClient, ServeError, decorrelated_jitter


def test_jitter_draws_between_base_and_three_times_previous():
    lo = decorrelated_jitter(2.0, 0.5, 30.0, rng=lambda: 0.0)
    hi = decorrelated_jitter(2.0, 0.5, 30.0, rng=lambda: 0.999999)
    assert lo == 0.5
    assert hi == pytest.approx(6.0, rel=1e-3)


def test_jitter_caps_and_floors():
    assert decorrelated_jitter(100.0, 0.5, 30.0, rng=lambda: 1.0 - 1e-9) \
        == 30.0
    # A server-sent retry_after lifts any smaller draw to the floor.
    assert decorrelated_jitter(0.5, 0.5, 30.0, floor_s=7.5,
                               rng=lambda: 0.0) == 7.5
    # ...but never truncates a larger draw.
    assert decorrelated_jitter(10.0, 0.5, 30.0, floor_s=7.5,
                               rng=lambda: 0.999999) > 7.5


def test_jitter_decorrelates_successive_sleeps():
    """The schedule grows from the *previous draw*, not a fixed ladder:
    two clients with different rng streams diverge immediately."""
    prev_a = prev_b = 0.5
    seq_a, seq_b = [], []
    draws_a = iter([0.9, 0.1, 0.8, 0.3])
    draws_b = iter([0.2, 0.7, 0.4, 0.6])
    for _ in range(4):
        prev_a = decorrelated_jitter(prev_a, 0.5, 30.0,
                                     rng=lambda: next(draws_a))
        prev_b = decorrelated_jitter(prev_b, 0.5, 30.0,
                                     rng=lambda: next(draws_b))
        seq_a.append(prev_a)
        seq_b.append(prev_b)
    assert seq_a != seq_b
    assert all(0.5 <= s <= 30.0 for s in seq_a + seq_b)


def _retrying_client(monkeypatch, replies):
    """A client whose transport is the scripted ``replies`` list: each
    entry is either an Exception to raise or a dict to return."""
    client = ServeClient(socket_path="/nonexistent.sock")
    script = iter(replies)

    def fake_request(req):
        item = next(script)
        if isinstance(item, Exception):
            raise item
        return item

    monkeypatch.setattr(client, "request", fake_request)
    return client


def test_retrying_sleep_schedule_honors_retry_after_floor(monkeypatch):
    """saturated(retry_after=5) → the first sleep is at least 5s even
    though the jittered draw would have been far smaller."""
    client = _retrying_client(monkeypatch, [
        ServeError("saturated", "full", retry_after=5.0),
        ServeError("unavailable", "disk full", retry_after=0.1),
        {"ok": True, "done": True},
    ])
    sleeps = []
    rep = client.request_retrying(
        {"op": "submit"}, retries=4, base_s=0.5, cap_s=30.0,
        sleep=sleeps.append, rng=lambda: 0.0)
    assert rep == {"ok": True, "done": True}
    assert len(sleeps) == 2
    assert sleeps[0] == 5.0, "retry_after must floor the jittered draw"
    # Second draw: rng=0 gives base (0.5), floored by retry_after=0.1.
    assert sleeps[1] == 0.5


def test_retrying_gives_up_after_budget(monkeypatch):
    client = _retrying_client(monkeypatch, [
        ServeError("saturated", "full") for _ in range(3)])
    sleeps = []
    with pytest.raises(ServeError) as err:
        client.request_retrying({"op": "submit"}, retries=2,
                                sleep=sleeps.append, rng=lambda: 0.0)
    assert err.value.code == "saturated"
    assert len(sleeps) == 2


def test_retrying_never_retries_terminal_codes(monkeypatch):
    for code in ("bad-request", "draining", "too-large"):
        client = _retrying_client(monkeypatch, [ServeError(code, "no")])
        sleeps = []
        with pytest.raises(ServeError):
            client.request_retrying({"op": "x"}, retries=4,
                                    sleep=sleeps.append)
        assert sleeps == [], f"{code} must raise immediately"


def test_retrying_covers_unreachable_daemon(monkeypatch):
    """A restarting daemon (connection refused) is transient: retried."""
    client = _retrying_client(monkeypatch, [
        ServeError("unreachable", "connection refused"),
        {"ok": True},
    ])
    sleeps = []
    assert client.request_retrying({"op": "status"}, retries=1,
                                   sleep=sleeps.append,
                                   rng=lambda: 0.0) == {"ok": True}
    assert len(sleeps) == 1
