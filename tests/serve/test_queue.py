"""The durable job queue: fsync'd records, replay, compaction."""

import json
import os

from repro.serve.queue import DurableQueue, QueueState


def _q(tmp_path):
    return DurableQueue(str(tmp_path / "queue.jsonl"))


SPEC = {"id": "syn-0", "fn": "synthetic", "params": {}, "base_seed": 1}


def test_empty_replay(tmp_path):
    state = _q(tmp_path).replay()
    assert state.pending == {} and state.quarantined == {}


def test_accepted_job_survives_replay(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_job("d2", dict(SPEC, id="syn-1"))
    state = q.replay()
    assert set(state.pending) == {"d1", "d2"}
    assert state.pending["d1"] == SPEC


def test_done_and_failed_are_terminal(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_job("d2", SPEC)
    q.record_job("d3", SPEC)
    q.record_done("d1")
    q.record_failed("d2", "boom")
    state = q.replay()
    assert set(state.pending) == {"d3"}
    assert state.completed == 1 and state.failed == 1


def test_quarantine_persists_across_replay(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_quarantine("d1", attempts=3, error="poisoned")
    state = q.replay()
    assert "d1" not in state.pending
    assert state.quarantined["d1"]["attempts"] == 3
    assert state.quarantined["d1"]["error"] == "poisoned"


def test_torn_tail_repaired_on_replay(tmp_path):
    """kill -9 mid-append must not cost any *earlier* accepted job."""
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    with open(q.path, "a") as fp:
        fp.write('{"kind":"job","id":"d2","sp')  # power loss here
    state = q.replay()
    assert set(state.pending) == {"d1"}
    # and the file itself was healed: a subsequent append parses cleanly
    q.record_job("d3", SPEC)
    assert set(q.replay().pending) == {"d1", "d3"}


def test_garbage_lines_skipped(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    with open(q.path, "a") as fp:
        fp.write("not json at all\n")
        fp.write('"a bare string"\n')
    q.record_job("d2", SPEC)
    assert set(q.replay().pending) == {"d1", "d2"}


def test_compaction_folds_terminal_records(tmp_path):
    q = _q(tmp_path)
    for i in range(20):
        q.record_job(f"d{i}", SPEC)
        q.record_done(f"d{i}")
    q.record_job("live", SPEC)
    q.record_quarantine("bad", attempts=3, error="poisoned")
    before = os.path.getsize(q.path)
    state = q.replay()
    q.compact(state)
    assert os.path.getsize(q.path) < before
    lines = [json.loads(line) for line in open(q.path)]
    assert {rec["kind"] for rec in lines} == {"job", "quarantine"}
    state2 = q.replay()
    assert set(state2.pending) == {"live"}
    assert set(state2.quarantined) == {"bad"}


def test_compaction_of_empty_state(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_done("d1")
    q.compact(q.replay())
    assert os.path.getsize(q.path) == 0
    assert q.replay() == QueueState()


def test_full_disk_raises_typed_journal_error(tmp_path, monkeypatch):
    """ENOSPC at the fsync layer surfaces as JournalWriteError — an
    OSError subclass (broad handlers still work) carrying the path."""
    import errno

    import repro.runx.journal as journal_mod
    from repro.serve.queue import JournalWriteError

    def no_space(path, line):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(journal_mod, "fsync_append", no_space)
    q = _q(tmp_path)
    try:
        q.record_job("d1", SPEC)
    except JournalWriteError as exc:
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENOSPC
        assert q.path in str(exc)
    else:
        raise AssertionError("record_job must raise on a full disk")


def test_daemon_maps_full_disk_to_retryable_unavailable(tmp_path,
                                                        monkeypatch):
    """A daemon whose journal hits ENOSPC sheds load with a typed
    retryable reply (unavailable + retry_after) instead of crashing,
    and keeps serving once the disk recovers."""
    import asyncio
    import errno

    from repro.runx import CellSpec
    from repro.serve import ServeClient, ServeConfig, ServeError
    from repro.serve.daemon import ServeDaemon

    spec = CellSpec(id="syn-0", fn="synthetic",
                    params={"value": 1.0, "reps": 2}, base_seed=7)
    cfg = ServeConfig(state_dir=str(tmp_path / "state"), workers=1)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        loop = asyncio.get_running_loop()
        client = ServeClient(socket_path=cfg.resolved_socket())

        real = daemon.queue_journal.record_job
        from repro.runx.journal import JournalWriteError

        def failing(digest, spec_rec):
            raise JournalWriteError(daemon.queue_journal.path,
                                    OSError(errno.ENOSPC, "full"))

        monkeypatch.setattr(daemon.queue_journal, "record_job", failing)
        with_err = None
        try:
            await loop.run_in_executor(
                None, lambda: client.submit([spec.to_record()]))
        except ServeError as exc:
            with_err = exc
        assert with_err is not None
        assert with_err.code == "unavailable"
        assert with_err.retry_after and with_err.retry_after > 0
        assert daemon.metrics.counter(
            "serve.journal.write_errors").value == 1

        # Disk recovers: the same submit now computes normally.
        monkeypatch.setattr(daemon.queue_journal, "record_job", real)
        rep = await loop.run_in_executor(
            None, lambda: client.submit([spec.to_record()]))
        assert rep["cells"][0]["status"] == "ok"
        await daemon.drain()

    asyncio.run(scenario())
