"""The durable job queue: fsync'd records, replay, compaction."""

import json
import os

from repro.serve.queue import DurableQueue, QueueState


def _q(tmp_path):
    return DurableQueue(str(tmp_path / "queue.jsonl"))


SPEC = {"id": "syn-0", "fn": "synthetic", "params": {}, "base_seed": 1}


def test_empty_replay(tmp_path):
    state = _q(tmp_path).replay()
    assert state.pending == {} and state.quarantined == {}


def test_accepted_job_survives_replay(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_job("d2", dict(SPEC, id="syn-1"))
    state = q.replay()
    assert set(state.pending) == {"d1", "d2"}
    assert state.pending["d1"] == SPEC


def test_done_and_failed_are_terminal(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_job("d2", SPEC)
    q.record_job("d3", SPEC)
    q.record_done("d1")
    q.record_failed("d2", "boom")
    state = q.replay()
    assert set(state.pending) == {"d3"}
    assert state.completed == 1 and state.failed == 1


def test_quarantine_persists_across_replay(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_quarantine("d1", attempts=3, error="poisoned")
    state = q.replay()
    assert "d1" not in state.pending
    assert state.quarantined["d1"]["attempts"] == 3
    assert state.quarantined["d1"]["error"] == "poisoned"


def test_torn_tail_repaired_on_replay(tmp_path):
    """kill -9 mid-append must not cost any *earlier* accepted job."""
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    with open(q.path, "a") as fp:
        fp.write('{"kind":"job","id":"d2","sp')  # power loss here
    state = q.replay()
    assert set(state.pending) == {"d1"}
    # and the file itself was healed: a subsequent append parses cleanly
    q.record_job("d3", SPEC)
    assert set(q.replay().pending) == {"d1", "d3"}


def test_garbage_lines_skipped(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    with open(q.path, "a") as fp:
        fp.write("not json at all\n")
        fp.write('"a bare string"\n')
    q.record_job("d2", SPEC)
    assert set(q.replay().pending) == {"d1", "d2"}


def test_compaction_folds_terminal_records(tmp_path):
    q = _q(tmp_path)
    for i in range(20):
        q.record_job(f"d{i}", SPEC)
        q.record_done(f"d{i}")
    q.record_job("live", SPEC)
    q.record_quarantine("bad", attempts=3, error="poisoned")
    before = os.path.getsize(q.path)
    state = q.replay()
    q.compact(state)
    assert os.path.getsize(q.path) < before
    lines = [json.loads(line) for line in open(q.path)]
    assert {rec["kind"] for rec in lines} == {"job", "quarantine"}
    state2 = q.replay()
    assert set(state2.pending) == {"live"}
    assert set(state2.quarantined) == {"bad"}


def test_compaction_of_empty_state(tmp_path):
    q = _q(tmp_path)
    q.record_job("d1", SPEC)
    q.record_done("d1")
    q.compact(q.replay())
    assert os.path.getsize(q.path) == 0
    assert q.replay() == QueueState()
