"""Lease semantics and fencing: the invariants that make the fleet safe.

Unit tests drive :class:`~repro.serve.fleet.FleetScheduler` with an
injected fake monotonic clock, so expiry is exact and instant.  The
end-to-end tests run a real daemon on a real TCP socket (port 0) and
speak the fleet protocol both through a real :class:`WorkerAgent` and
through a raw socket "zombie" worker that deliberately violates the
protocol's timing — the partition flow (lease expires while the holder
is frozen, the stale result comes back later and is fenced) without
needing SIGSTOP.
"""

import asyncio
import json
import socket
import threading

from repro.obs import MetricsRegistry
from repro.runx import CellSpec
from repro.runx.cells import run_cell
from repro.serve import ServeClient, ServeConfig
from repro.serve.agent import AgentConfig, WorkerAgent
from repro.serve.daemon import ServeDaemon
from repro.serve.fleet import EPOCH_STRIDE, FleetScheduler, next_fence_epoch
from repro.serve.pool import WorkOrder


def _spec(i=0, **params):
    return CellSpec(id=f"syn-{i}", fn="synthetic",
                    params={"value": float(i), **params}, base_seed=100 + i)


def _order(i=0):
    spec = _spec(i)
    return WorkOrder(spec.digest(), spec.to_record(), spec.base_seed)


class _Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


def _sched(tmp_path, lease_s=10.0):
    clock = _Clock()
    metrics = MetricsRegistry()
    sched = FleetScheduler(str(tmp_path), lease_s=lease_s,
                           metrics=metrics, now=clock)
    return sched, clock, metrics


def _counter(metrics, name):
    return metrics.counter(name, "").value


# -- scheduler unit tests ------------------------------------------------------
def test_tokens_strictly_monotonic(tmp_path):
    sched, _, _ = _sched(tmp_path)
    worker = sched.register("w", "test")
    tokens = []
    for i in range(5):
        lease = sched.grant(worker.worker_id, _order(i))
        tokens.append(lease.token)
    assert tokens == sorted(tokens)
    assert len(set(tokens)) == len(tokens)


def test_stale_token_is_fenced_and_counted(tmp_path):
    sched, _, metrics = _sched(tmp_path)
    worker = sched.register("w", "test")
    order = _order(0)
    first = sched.grant(worker.worker_id, order)
    # Re-grant (as after expiry): the new lease's token must win.
    second = sched.grant(worker.worker_id, order)
    assert second.token > first.token
    assert sched.take(order.digest, first.token) is None, \
        "a result under the superseded token must never be committed"
    assert _counter(metrics, "serve.fleet.leases.fenced") == 1
    taken = sched.take(order.digest, second.token)
    assert taken is not None and taken.order is order
    # Once committed, even the current token is spent.
    assert sched.take(order.digest, second.token) is None


def test_lease_expires_on_heartbeat_loss_then_regrants(tmp_path):
    sched, clock, metrics = _sched(tmp_path, lease_s=5.0)
    worker = sched.register("w", "test")
    order = _order(0)
    lease = sched.grant(worker.worker_id, order)
    clock.t += 4.0
    assert sched.heartbeat(worker.worker_id, order.digest, lease.token)
    clock.t += 4.0  # renewed at +4, so still alive at +8
    assert sched.expire() == []
    clock.t += 5.5  # silent past the deadline now
    expired = sched.expire()
    assert [e.order for e in expired] == [order]
    assert _counter(metrics, "serve.fleet.leases.expired") == 1
    # The stale holder can neither renew nor commit...
    assert not sched.heartbeat(worker.worker_id, order.digest, lease.token)
    assert sched.take(order.digest, lease.token) is None
    # ...but a re-grant under a bumped token works.
    lease2 = sched.grant(worker.worker_id, order)
    assert lease2.token > lease.token
    assert sched.take(order.digest, lease2.token) is not None


def test_disconnect_revokes_all_held_leases(tmp_path):
    sched, _, metrics = _sched(tmp_path)
    worker = sched.register("w", "test")
    orders = [_order(i) for i in range(3)]
    leases = [sched.grant(worker.worker_id, o) for o in orders]
    revoked = sched.disconnect(worker.worker_id)
    assert sorted(o.digest for o in revoked) == \
        sorted(o.digest for o in orders)
    assert len(sched) == 0 and sched.workers() == 0
    for order, lease in zip(orders, leases):
        assert sched.take(order.digest, lease.token) is None
    assert _counter(metrics, "serve.fleet.disconnects") == 1


def test_fence_epoch_survives_restarts(tmp_path):
    """A post-restart scheduler's very first token beats every token the
    previous life ever granted — the cross-restart fencing invariant."""
    sched_a, _, _ = _sched(tmp_path)
    worker_a = sched_a.register("w", "test")
    last_old = None
    for i in range(3):
        last_old = sched_a.grant(worker_a.worker_id, _order(i)).token
    sched_b, _, metrics_b = _sched(tmp_path)  # "restarted" on same dir
    worker_b = sched_b.register("w", "test")
    first_new = sched_b.grant(worker_b.worker_id, _order(0)).token
    assert first_new > last_old
    assert first_new - last_old >= EPOCH_STRIDE - 3
    # And the old epoch's token is fenced by the new table.
    assert sched_b.take(_order(0).digest, last_old) is None
    assert _counter(metrics_b, "serve.fleet.leases.fenced") == 1


def test_fence_epoch_file_recovers_from_corruption(tmp_path):
    epoch = next_fence_epoch(str(tmp_path))
    assert next_fence_epoch(str(tmp_path)) == epoch + 1
    (tmp_path / "fleet.fence").write_text("not json")
    assert next_fence_epoch(str(tmp_path)) == 1  # wiped state restarts


# -- end-to-end over real sockets ----------------------------------------------
class _RawWorker:
    """A protocol-level worker under test control (blocking socket)."""

    def __init__(self, endpoint):
        self.sock = socket.create_connection(endpoint, timeout=30.0)
        self.fp = self.sock.makefile("rb")

    def req(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")
        return json.loads(self.fp.readline())

    def hello(self, proto=1, name="raw"):
        return self.req({"op": "worker-hello", "proto": proto, "name": name})

    def lease(self):
        return self.req({"op": "lease-request"})

    def result(self, digest, token, value):
        return self.req({"op": "worker-result", "digest": digest,
                         "token": token,
                         "result": {"ok": True, "value": value}})

    def close(self):
        self.fp.close()
        self.sock.close()


def _cfg(tmp_path, **kw):
    kw.setdefault("workers", 0)  # pure fleet: remote execution is forced
    kw.setdefault("tcp", ("127.0.0.1", 0))
    kw.setdefault("timeout_s", 60.0)
    return ServeConfig(state_dir=str(tmp_path / "state"), **kw)


async def _call(fn, *args, **kw):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, lambda: fn(*args, **kw))


def test_agent_runs_cells_end_to_end_pure_fleet(tmp_path):
    """--workers 0 + one connected agent: the sweep is computed entirely
    remotely and the payloads are byte-identical to in-process runs."""
    cfg = _cfg(tmp_path)
    specs = [_spec(i, reps=2) for i in range(3)]

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        agent = WorkerAgent(AgentConfig(connect=daemon.tcp_endpoint(),
                                        name="t1", hb_s=0.2))
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        try:
            client = ServeClient(socket_path=cfg.resolved_socket())
            rep = await _call(client.submit,
                              [s.to_record() for s in specs])
            assert all(c["status"] == "ok" for c in rep["cells"])
            for spec, cell in zip(specs, rep["cells"]):
                assert cell["value"] == run_cell(
                    spec.fn, spec.params, spec.base_seed)
            st = await _call(client.status)
            assert st["fleet"]["workers"], "agent should appear in status"
            assert st["workers"] == [], "no local pool at --workers 0"
        finally:
            agent.stop()
            await daemon.drain()
            await _call(thread.join, 10.0)

    asyncio.run(scenario())


def test_partition_flow_expiry_regrant_fence(tmp_path):
    """The SIGSTOP drill at protocol level: a worker takes a lease, goes
    silent past lease_s (frozen/partitioned), the daemon expires and
    re-grants it, and the zombie's late result is fenced — while the
    cell still completes exactly once with the correct value."""
    cfg = _cfg(tmp_path, lease_s=0.4)
    spec = _spec(0, reps=2)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        endpoint = daemon.tcp_endpoint()
        client = ServeClient(socket_path=cfg.resolved_socket())
        waiter = asyncio.ensure_future(
            _call(client.submit, [spec.to_record()]))

        zombie = await _call(_RawWorker, endpoint)
        assert (await _call(zombie.hello))["ok"]
        lease = None
        while lease is None:  # the submit may still be in flight
            rep = await _call(zombie.lease)
            lease = rep.get("lease")
            if lease is None:
                await asyncio.sleep(0.05)
        # Freeze: no heartbeats until well past the deadline.
        await asyncio.sleep(1.2)
        assert daemon.metrics.counter(
            "serve.fleet.leases.expired").value >= 1

        # A healthy worker picks up the re-grant and completes it.
        healthy = await _call(_RawWorker, endpoint)
        assert (await _call(healthy.hello, 1, "healthy"))["ok"]
        regrant = None
        while regrant is None:
            rep = await _call(healthy.lease)
            regrant = rep.get("lease")
            if regrant is None:
                await asyncio.sleep(0.05)
        assert regrant["digest"] == lease["digest"]
        assert regrant["token"] > lease["token"]
        good = run_cell(spec.fn, spec.params, spec.base_seed)
        rep = await _call(healthy.result, regrant["digest"],
                          regrant["token"], good)
        assert rep["accepted"] is True

        # The zombie thaws and delivers garbage under the dead token:
        # fenced, never committed.
        rep = await _call(zombie.result, lease["digest"], lease["token"],
                          {"poisoned": True})
        assert rep["accepted"] is False
        assert daemon.metrics.counter(
            "serve.fleet.leases.fenced").value >= 1

        out = await waiter
        assert out["cells"][0]["status"] == "ok"
        assert out["cells"][0]["value"] == good
        await _call(zombie.close)
        await _call(healthy.close)
        await daemon.drain()

    asyncio.run(scenario())


def test_disconnect_mid_lease_requeues_to_local_pool(tmp_path):
    """A vanished connection is an instant failure detection: the lease
    is revoked and the cell completes via the local pool's retry path."""
    cfg = _cfg(tmp_path, workers=1, lease_s=30.0)
    spec = _spec(0, reps=2)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        endpoint = daemon.tcp_endpoint()
        worker = await _call(_RawWorker, endpoint)
        assert (await _call(worker.hello))["ok"]
        client = ServeClient(socket_path=cfg.resolved_socket())
        waiter = asyncio.ensure_future(
            _call(client.submit, [spec.to_record()]))
        lease = None
        while lease is None:
            rep = await _call(worker.lease)
            lease = rep.get("lease")
            if lease is None:
                await asyncio.sleep(0.05)
        await _call(worker.close)  # hang up holding the lease
        out = await waiter
        assert out["cells"][0]["status"] == "ok"
        assert out["cells"][0]["value"] == run_cell(
            spec.fn, spec.params, spec.base_seed)
        assert out["cells"][0]["attempts"] == 2, \
            "the revoked lease must count as a failed attempt"
        assert daemon.metrics.counter("serve.jobs.requeued").value >= 1
        await daemon.drain()

    asyncio.run(scenario())


def test_daemon_restart_fences_old_epoch_and_replays_lease(tmp_path):
    """kill -9 with a lease outstanding: the successor replays the job
    from the durable queue, and the pre-restart token is fenced."""
    cfg = _cfg(tmp_path, lease_s=30.0)
    spec = _spec(0, reps=2)

    async def scenario():
        daemon_a = ServeDaemon(cfg)
        await daemon_a.start()
        client = ServeClient(socket_path=cfg.resolved_socket())
        await _call(client.submit, [spec.to_record()], False)
        worker = await _call(_RawWorker, daemon_a.tcp_endpoint())
        assert (await _call(worker.hello))["ok"]
        lease = (await _call(worker.lease))["lease"]
        assert lease is not None
        # Simulate kill -9: tear the daemon down without drain.
        await _call(worker.close)
        for server in daemon_a._servers:
            server.close()
            await server.wait_closed()
        daemon_a._lease_reaper_task.cancel()
        if daemon_a.pool is not None:
            await daemon_a.pool.stop()
        daemon_a._lock.release()

        daemon_b = ServeDaemon(cfg)
        await daemon_b.start()
        assert daemon_b.metrics.counter("serve.jobs.replayed").value == 1, \
            "the leased-but-unfinished job must be owed by the successor"
        zombie = await _call(_RawWorker, daemon_b.tcp_endpoint())
        assert (await _call(zombie.hello, 1, "zombie"))["ok"]
        rep = await _call(zombie.result, lease["digest"], lease["token"],
                          {"poisoned": True})
        assert rep["accepted"] is False, \
            "a pre-restart token must be fenced by the new epoch"
        # The replayed job completes under the new epoch.
        fresh = None
        while fresh is None:
            rep = await _call(zombie.lease)
            fresh = rep.get("lease")
            if fresh is None:
                await asyncio.sleep(0.05)
        assert fresh["digest"] == lease["digest"]
        assert fresh["token"] > lease["token"]
        good = run_cell(spec.fn, spec.params, spec.base_seed)
        assert (await _call(zombie.result, fresh["digest"], fresh["token"],
                            good))["accepted"] is True
        rep = await _call(client.submit, [spec.to_record()])
        assert rep["cells"][0]["value"] == good
        assert rep["cells"][0].get("cached") is True
        await _call(zombie.close)
        await daemon_b.drain()

    asyncio.run(scenario())


def test_hello_refuses_unknown_proto(tmp_path):
    cfg = _cfg(tmp_path)

    async def scenario():
        daemon = ServeDaemon(cfg)
        await daemon.start()
        worker = await _call(_RawWorker, daemon.tcp_endpoint())
        rep = await _call(worker.hello, 99)
        assert rep["ok"] is False and rep["error"] == "bad-request"
        # And fleet ops without a hello are refused too.
        rep = await _call(worker.lease)
        assert rep["ok"] is False and rep["error"] == "bad-request"
        await _call(worker.close)
        await daemon.drain()

    asyncio.run(scenario())
