"""Shared-baseline memoization (repro.obs.attr.baseline).

Two groups:

* Store semantics — repeated lookups of one (app, class, topology, seed)
  key serve the identical record bytes, and a store never serves one
  seed's baseline for another seed's lookup.

* The determinism invariant the sweep-level sharing leans on — a
  zero-SMI run is bit-identical across seeds and SMI intervals (the RNG
  only draws for SMI arrivals, so with no SMIs it is never consulted).
  ``repro.runx.cells._nas_cell_attr`` points every SMI class of one
  configuration at the SMM-0 column's seed on the strength of this;
  if these tests start failing, that sharing is no longer sound.
"""

import json

import pytest

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.obs import MetricsRegistry
from repro.obs.attr import AttrCapture, attribute_cell, build_profile
from repro.obs.attr.baseline import (
    BaselineProfile,
    BaselineStore,
    baseline_digest,
    global_store,
    reset_global_store,
)
from repro.simx.timeline import Timeline


def _profile(elapsed=1.25, span=1_250_000_000):
    ranks = {0: (0, 10, 20, 30, 40.5, 50.25), 1: (1, 11, 21, 31, 41.5, 51.25)}
    rec = {
        "elapsed_app_s": elapsed,
        "span_ns": span,
        "ranks": [list(v) for _, v in sorted(ranks.items())],
    }
    return BaselineProfile.from_record(rec)


# -- digest keying ------------------------------------------------------------

def test_digest_keys_on_app_class_topology_seed():
    ref = baseline_digest("BT", "A", 16, 1, False, 7)
    assert baseline_digest("BT", "A", 16, 1, False, 7) == ref  # stable
    assert baseline_digest("FT", "A", 16, 1, False, 7) != ref
    assert baseline_digest("BT", "B", 16, 1, False, 7) != ref
    assert baseline_digest("BT", "A", 4, 1, False, 7) != ref
    assert baseline_digest("BT", "A", 16, 4, False, 7) != ref
    assert baseline_digest("BT", "A", 16, 1, True, 7) != ref
    assert baseline_digest("BT", "A", 16, 1, False, 8) != ref


def test_digest_has_no_interval_axis():
    """The SMI interval must not key the baseline: SMM 0 never consumes
    it, and keying on it would shatter cross-column reuse."""
    import inspect

    assert "interval" not in " ".join(
        inspect.signature(baseline_digest).parameters)


# -- store semantics ----------------------------------------------------------

def test_repeated_get_serves_identical_bytes():
    store = BaselineStore()
    digest = baseline_digest("EP", "A", 2, 1, False, 1)
    store.put(digest, _profile())
    a = store.get(digest)
    b = store.get(digest)
    assert a is not None and b is not None
    blob_a = json.dumps(a.to_record(), sort_keys=True)
    blob_b = json.dumps(b.to_record(), sort_keys=True)
    assert blob_a == blob_b == json.dumps(
        _profile().to_record(), sort_keys=True)
    # Both gets were fed from the one underlying record object.
    (d0, rec0), = store.export_all()
    assert d0 == digest
    assert store.export_all()[0][1] is rec0
    assert store.stats() == {"hits": 2, "misses": 0, "evictions": 0, "entries": 1}


def test_store_never_crosses_seeds():
    store = BaselineStore()
    d_seed1 = baseline_digest("EP", "A", 2, 1, False, 1)
    d_seed2 = baseline_digest("EP", "A", 2, 1, False, 2)
    assert d_seed1 != d_seed2
    store.put(d_seed1, _profile(elapsed=1.0))
    assert store.get(d_seed2) is None  # other seed: miss, not a stale hit
    got = store.get(d_seed1)
    assert got is not None and got.elapsed_app_s == 1.0
    assert store.stats() == {"hits": 1, "misses": 1, "evictions": 0, "entries": 1}


def test_record_round_trip_is_exact():
    p = _profile(elapsed=0.1 + 0.2, span=3)  # 0.30000000000000004
    q = BaselineProfile.from_record(
        json.loads(json.dumps(p.to_record())))
    assert q.elapsed_app_s == p.elapsed_app_s  # bit-exact, not approx
    assert q.span_ns == p.span_ns
    for r in p.ranks:
        for f in ("wait_ns", "queue_ns", "smm_wait_ns", "stolen_ns",
                  "true_ns"):
            assert getattr(q.ranks[r], f) == getattr(p.ranks[r], f)


def test_absorb_is_uncounted_and_not_redrained():
    src, dst = BaselineStore(), BaselineStore()
    digest = baseline_digest("FT", "A", 4, 4, False, 3)
    src.put(digest, _profile())
    pairs = src.drain_new()
    assert [d for d, _ in pairs] == [digest]
    assert src.drain_new() == []  # drained exactly once

    dst.absorb(pairs)
    assert dst.drain_new() == []  # absorbed records are not re-exported
    assert dst.get(digest) is not None
    assert dst.stats()["misses"] == 0

    # put() after absorb of the same digest keeps the absorbed record.
    dst.absorb(pairs)
    assert len(dst) == 1


def test_reset_global_store_replaces_instance():
    s1 = global_store()
    s2 = reset_global_store()
    assert s2 is global_store()
    assert s2 is not s1


# -- the determinism invariant ------------------------------------------------

def _baseline_record(seed, interval):
    cfg = NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=1)
    cap = AttrCapture()
    elapsed = run_nas_config(cfg, smm=0, seed=seed,
                             interval_jiffies=interval,
                             timeline=Timeline(), attr=cap)
    rec = BaselineProfile.from_profile(build_profile(cap)).to_record()
    return elapsed, rec


def test_zero_smi_baseline_is_seed_and_interval_invariant():
    """The invariant behind canonical-seed baseline sharing: with no
    SMIs the RNG is never drawn, so seed and interval are inert — the
    run (and the full baseline profile) is bit-identical."""
    e1, r1 = _baseline_record(seed=1, interval=1000)
    e2, r2 = _baseline_record(seed=424243, interval=500)
    assert e1 == e2
    assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)


def test_memoized_baseline_reproduces_fresh_report_exactly():
    """attribute_cell against a warm store must emit the same report,
    byte for byte, as against a cold one — and pay zero baseline sims."""
    reg = MetricsRegistry()
    store = BaselineStore()
    cold = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=2, seed=1,
                          metrics=reg, baselines=store)
    assert reg.counter("attr.baseline.misses").value == 1
    warm = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=2, seed=1,
                          metrics=reg, baselines=store)
    assert reg.counter("attr.baseline.hits").value == 1
    assert json.dumps(warm.report, sort_keys=True) == \
        json.dumps(cold.report, sort_keys=True)


def test_canonical_baseline_seed_sharing_is_lossless():
    """The sweep's sharing scheme end to end: two SMI classes with
    different (strided) noisy seeds share one canonical-seed baseline;
    both reports equal the unshared per-seed-baseline runs exactly."""
    canonical = 5
    shared = BaselineStore()
    reg = MetricsRegistry()
    s1 = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=1, seed=36,
                        baseline_seed=canonical, baselines=shared,
                        metrics=reg)
    s2 = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=2, seed=67,
                        baseline_seed=canonical, baselines=shared,
                        metrics=reg)
    assert reg.counter("attr.baseline.misses").value == 1  # one baseline sim
    assert reg.counter("attr.baseline.hits").value == 1    # ...shared

    u1 = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=1, seed=36,
                        baselines=BaselineStore())
    u2 = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=2, seed=67,
                        baselines=BaselineStore())
    assert json.dumps(s1.report, sort_keys=True) == \
        json.dumps(u1.report, sort_keys=True)
    assert json.dumps(s2.report, sort_keys=True) == \
        json.dumps(u2.report, sort_keys=True)


def test_default_store_is_process_global():
    """Two attribute_cell calls with no explicit store share the
    process-wide one (the conftest fixture resets it around each test)."""
    reg = MetricsRegistry()
    attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=2, seed=1, metrics=reg)
    attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=1, seed=1, metrics=reg)
    assert reg.counter("attr.baseline.misses").value == 1
    assert reg.counter("attr.baseline.hits").value == 1
    assert len(global_store()) == 1
