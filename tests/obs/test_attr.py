"""Unit tests for the noise-attribution engine (repro.obs.attr)."""

import pytest

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.obs import MetricsRegistry
from repro.obs.attr import AttrCapture, attribute_cell, build_profile, render_explain
from repro.obs.attr.capture import SendRec, WaitRec
from repro.obs.attr.profile import (
    COLLECTIVE,
    LATE_RECEIVER,
    LATE_SENDER,
    _classify,
)
from repro.simx.timeline import Timeline


def _run(cfg, smm, attr=None):
    return run_nas_config(cfg, smm=smm, seed=1, timeline=Timeline(), attr=attr)


def test_capture_is_inert():
    """Attaching the capture layer must not perturb the simulation: the
    hooks record, they never schedule — elapsed times are bit-identical."""
    cfg = NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=1)
    plain = _run(cfg, smm=2)
    cap = AttrCapture()
    observed = _run(cfg, smm=2, attr=cap)
    assert observed == plain


def test_capture_requires_enabled_timeline():
    cfg = NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=1)
    cap = AttrCapture()
    with pytest.raises(ValueError, match="timeline"):
        run_nas_config(cfg, smm=2, seed=1, attr=cap,
                       timeline=Timeline(enabled=False))


def test_build_profile_requires_finalized_capture():
    cap = AttrCapture()
    with pytest.raises(ValueError):
        build_profile(cap)


def test_attribute_cell_rejects_smm_zero():
    with pytest.raises(ValueError, match="smm"):
        attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=0)


def test_attribute_cell_infeasible_returns_none():
    # BT needs a square rank count; 2 ranks is infeasible.
    assert attribute_cell("BT", cls="A", nodes=2, rpn=1, smm=2) is None


# -- wait classification ------------------------------------------------------

def _send(seq, inject, queue, eta, visible):
    return {seq: SendRec(seq=seq, src=1, dst=0, tag=7, nbytes=64,
                         inject_ns=inject, queue_ns=queue, eta_ns=eta,
                         visible_ns=visible)}


def test_classify_late_sender():
    w = WaitRec(rank=0, begin_ns=100, end_ns=900, src=1, tag=7, coll=None,
                seq=5, msg_src=1, post_ns=90)
    cw = _classify(w, _send(5, 200, 50, 800, 850))
    assert cw.cls == LATE_SENDER
    # The message queued on the NIC 200..250, inside the wait span.
    assert cw.queue_ns == 50
    # Physically arrived at 800 but visible only at 850 (receiver gate).
    assert cw.gate_ns == 50


def test_classify_late_receiver():
    w = WaitRec(rank=0, begin_ns=500, end_ns=500, src=1, tag=7, coll=None,
                seq=5, msg_src=1, post_ns=490)
    cw = _classify(w, _send(5, 100, 0, 300, 300))
    assert cw.cls == LATE_RECEIVER
    assert cw.dur_ns == 0


def test_classify_collective():
    w = WaitRec(rank=0, begin_ns=100, end_ns=200, src=1, tag=1 << 20,
                coll="allreduce", seq=None, msg_src=1, post_ns=90)
    cw = _classify(w, {})
    assert cw.cls == COLLECTIVE
    assert cw.op == "allreduce"


def test_classify_unmatched_message_is_late_sender():
    w = WaitRec(rank=0, begin_ns=100, end_ns=900, src=1, tag=7, coll=None,
                seq=5, msg_src=1, post_ns=90)
    cw = _classify(w, {})
    assert cw.cls == LATE_SENDER


# -- end-to-end report shape --------------------------------------------------

def test_attribute_cell_report_and_rendering():
    reg = MetricsRegistry()
    a = attribute_cell("EP", cls="A", nodes=2, rpn=1, smm=2, seed=1,
                       metrics=reg)
    r = a.report
    assert r["bench"] == "EP" and r["nodes"] == 2 and r["smm"] == 2
    comp = r["components"]
    total = (comp["direct_smi_s"] + comp["induced_wait_s"]
             + comp["contention_s"] + comp["residual_s"])
    assert total == pytest.approx(r["slowdown_s"], abs=1e-6)
    assert r["conservation"]["ok"]
    assert len(r["per_rank"]) == 2
    assert reg.counter("attr.cells").value == 1
    assert reg.counter("attr.captures").value == 2  # baseline + noisy
    text = render_explain(r)
    assert "noise attribution" in text
    assert "direct SMI theft" in text
    assert "conservation" in text and "OK" in text
    assert "critical path" in text
