"""The observability CLI surface: trace subcommand, --metrics/--manifest."""

import json
import logging

from repro.cli import main


def test_cli_trace_quick_writes_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "t.trace.json"
    jsonl = tmp_path / "t.jsonl"
    assert main(["trace", "--quick", "-o", str(out),
                 "--jsonl", str(jsonl), "--metrics"]) == 0
    printed = capsys.readouterr().out
    assert "perfetto" in printed and "smm.entries" in printed

    doc = json.loads(out.read_text())
    assert {"traceEvents", "displayTimeUnit", "otherData"} == set(doc)
    assert doc["otherData"]["bench"] == "EP"
    assert doc["otherData"]["smm"] == 2
    assert any(
        e.get("ph") == "X" and e.get("name") == "SMM"
        for e in doc["traceEvents"]
    )
    lines = jsonl.read_text().splitlines()
    assert lines and all(json.loads(l)["kind"] for l in lines)


def test_cli_trace_smm0_has_no_smm_events(tmp_path):
    out = tmp_path / "clean.trace.json"
    assert main(["trace", "--quick", "--smm", "0", "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert not any(e.get("name") == "SMM" for e in doc["traceEvents"])


def test_cli_table_manifest_and_metrics(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["table2", "--quick", "--metrics", "--manifest"]) == 0
    printed = capsys.readouterr().out
    assert "engine.events.fired" in printed
    man = json.loads((tmp_path / "table2.manifest.json").read_text())
    assert man["command"] == "table2"
    assert man["matrix"] and man["cells"]
    assert "calibration" in man


def test_cli_manifest_explicit_path(tmp_path):
    path = tmp_path / "custom.json"
    assert main(["figure2", "--quick", "--manifest", str(path)]) == 0
    man = json.loads(path.read_text())
    assert man["command"] == "figure2"
    assert any("baseline" in c["label"] for c in man["cells"])


def test_verbose_flag_enables_harness_logging(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    # reset handlers so basicConfig in _setup_logging takes effect even
    # if an earlier test configured logging
    root = logging.getLogger()
    old = root.handlers[:]
    root.handlers[:] = []
    try:
        assert main(["-v", "figure2", "--quick"]) == 0
        err = capsys.readouterr().err
        assert "repro.harness.figure2" in err
    finally:
        root.handlers[:] = old


def test_package_root_has_null_handler():
    import repro  # noqa: F401

    handlers = logging.getLogger("repro").handlers
    assert any(isinstance(h, logging.NullHandler) for h in handlers)


def test_cli_explain_quick(tmp_path, capsys):
    report = tmp_path / "r.json"
    trace = tmp_path / "t.trace.json"
    assert main(["explain", "--quick", "--report", str(report),
                 "--trace", str(trace)]) == 0
    printed = capsys.readouterr().out
    assert "noise attribution" in printed
    assert "direct SMI theft" in printed
    assert "-> OK" in printed
    r = json.loads(report.read_text())
    assert r["bench"] == "EP" and r["conservation"]["ok"]
    doc = json.loads(trace.read_text())
    assert any(e.get("cat") == "mpi" for e in doc["traceEvents"])
    assert any(e.get("ph") == "C" for e in doc["traceEvents"])


def test_cli_explain_rejects_smm0(capsys):
    assert main(["explain", "--quick", "--smm", "0"]) == 2


def test_cli_explain_infeasible_config(capsys):
    # BT needs a square rank count: 2 nodes × 1 rank is infeasible.
    assert main(["explain", "--bench", "BT", "--nodes", "2"]) == 2


def test_cli_metrics_format_prom(capsys):
    assert main(["explain", "--quick", "--metrics",
                 "--metrics-format", "prom"]) == 0
    printed = capsys.readouterr().out
    assert "# TYPE repro_attr_cells_total counter" in printed
    assert "repro_attr_cells_total 1" in printed
