"""Chrome-trace export: schema, ordering, and exact SMM re-encoding."""

import io
import json

from repro.analysis.traces import smm_residency
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.obs.trace import (
    TID_CTR,
    TID_NET,
    TID_SMM,
    TID_WAIT_BASE,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.simx.timeline import Timeline


def _traced_quick_run(smm=2, seed=7):
    """The `repro-smm trace --quick` scenario, kept in-process so the
    test can also query the timeline directly."""
    tl = Timeline()
    cfg = NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=1)
    elapsed = run_nas_config(cfg, smm=smm, seed=seed, timeline=tl, trace=True)
    assert elapsed is not None
    return tl


def test_synthetic_smm_pairing_and_exact_durations():
    tl = Timeline()
    tl.record(100, "smm.enter", "node0", cause="tick")
    tl.record(250, "smm.exit", "node0")
    tl.record(400, "smm.enter", "node0")
    tl.record(1000, "smm.exit", "node0")
    tl.record(2000, "smm.enter", "node0")  # unclosed: must be dropped
    evs = [e for e in chrome_trace_events(tl) if e.get("ph") == "X"]
    assert len(evs) == 2
    assert [e["args"]["duration_ns"] for e in evs] == [150, 600]
    assert evs[0]["args"]["enter_ns"] == 100
    assert evs[0]["args"]["exit_ns"] == 250
    assert evs[0]["args"]["cause"] == "tick"  # enter payload re-encoded
    assert all(e["tid"] == TID_SMM for e in evs)
    # display fields are the same spans in µs
    assert evs[0]["ts"] == 0.1 and evs[0]["dur"] == 0.15


def test_node_filter_and_metadata_labels():
    tl = Timeline()
    tl.record(0, "smm.enter", "node0")
    tl.record(10, "smm.exit", "node0")
    tl.record(0, "smm.enter", "ghost")
    tl.record(10, "smm.exit", "ghost")
    evs = chrome_trace_events(tl, nodes=["node0", "node1"])
    names = {e["args"]["name"] for e in evs if e["name"] == "process_name"}
    assert names == {"node0", "node1"}
    assert not any(
        e.get("args", {}).get("name") == "ghost" for e in evs
    )
    smm = [e for e in evs if e.get("ph") == "X"]
    assert len(smm) == 1 and smm[0]["pid"] == 0
    thread = [e for e in evs if e["name"] == "thread_name"]
    assert any(t["args"]["name"] == "SMM" for t in thread)


def test_flow_events_connect_sender_and_receiver():
    tl = Timeline()
    tl.record(100, "net.send", "node0", id=1, nbytes=64, dst_node="node1")
    tl.record(900, "net.deliver", "node1", id=1, nbytes=64,
              src_node="node0", sent_ns=100)
    evs = chrome_trace_events(tl)
    phases = {e["ph"] for e in evs if e.get("cat") == "net"}
    assert {"s", "f", "X"} <= phases
    span = [e for e in evs if e.get("ph") == "X" and e["name"].startswith("msg")]
    assert span[0]["args"]["latency_ns"] == 800
    assert span[0]["tid"] == TID_NET
    flow_ids = {e.get("id") for e in evs if e["ph"] in ("s", "f")}
    assert flow_ids == {1}


def test_golden_trace_document_shape_and_monotonic_ts(tmp_path):
    """Golden-file test on the real --quick scenario: document schema,
    sorted timestamps, and integer pids with name metadata."""
    tl = _traced_quick_run()
    out = tmp_path / "quick.trace.json"
    n = write_chrome_trace(tl, str(out), nodes=["node0", "node1"],
                           extra={"seed": 7})
    doc = json.loads(out.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {"seed": 7}
    evs = doc["traceEvents"]
    assert len(evs) == n and n > 0
    body = [e for e in evs if e["ph"] != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)
    assert all(isinstance(e["pid"], int) for e in evs)
    for e in body:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(e)


def test_smm_duration_events_equal_residency_exactly():
    """Acceptance criterion: per-node summed args.duration_ns from the
    exported trace equals smm_residency().total_ns *exactly* — the
    exporter re-encodes the integer spans, never re-derives them."""
    tl = _traced_quick_run()
    t1 = max(r.time for r in tl) + 1
    evs = chrome_trace_events(tl, nodes=["node0", "node1"])
    for pid, node in enumerate(["node0", "node1"]):
        trace_total = sum(
            e["args"]["duration_ns"]
            for e in evs
            if e.get("ph") == "X" and e.get("name") == "SMM"
            and e["pid"] == pid
        )
        truth = smm_residency(tl, node, 0, t1).total_ns
        assert trace_total == truth  # exact integer equality
        assert trace_total > 0  # the scenario really had long SMIs


def test_write_jsonl_round_trip_and_kind_filter():
    tl = _traced_quick_run()
    buf = io.StringIO()
    n = write_jsonl(tl, buf)
    lines = buf.getvalue().splitlines()
    assert len(lines) == n == len(tl)
    recs = [json.loads(l) for l in lines]
    assert all({"time", "kind", "where", "data"} == set(r) for r in recs)

    buf2 = io.StringIO()
    n_smm = write_jsonl(tl, buf2, kinds=["smm."])
    assert 0 < n_smm < n
    assert all(
        json.loads(l)["kind"].startswith("smm.")
        for l in buf2.getvalue().splitlines()
    )


def test_wait_slices_and_counter_tracks():
    tl = Timeline()
    tl.record(100, "smm.enter", "node0")
    tl.record(300, "smm.exit", "node0")
    tl.record(500, "mpi.wait", "node0", rank=0, lrank=0,
              begin_ns=200, dur_ns=300, cls="p2p", src=1)
    tl.record(900, "mpi.wait", "node0", rank=0, lrank=0,
              begin_ns=700, dur_ns=200, cls="coll", src=-1)
    evs = chrome_trace_events(tl)
    waits = [e for e in evs if e.get("cat") == "mpi"]
    assert [e["name"] for e in waits] == ["wait:p2p", "wait:coll"]
    assert waits[0]["tid"] == TID_WAIT_BASE
    assert waits[0]["ts"] == 0.2 and waits[0]["dur"] == 0.3
    assert waits[0]["args"]["duration_ns"] == 300
    # Counter tracks: cumulative SMM residency and per-rank wait time.
    ctrs = [e for e in evs if e.get("ph") == "C"]
    assert all(e["tid"] == TID_CTR for e in ctrs)
    by_name = {}
    for e in ctrs:
        by_name.setdefault(e["name"], []).append(e["args"]["ms"])
    assert by_name["SMM residency (ms)"] == [200 / 1e6]
    assert by_name["MPI wait r0 (ms)"] == [300 / 1e6, 500 / 1e6]
    # The wait track is labeled with its rank.
    labels = {e["args"]["name"] for e in evs if e.get("name") == "thread_name"}
    assert "rank 0 wait" in labels and "counters" in labels


def test_traced_run_carries_wait_slices():
    tl = _traced_quick_run(smm=2)
    evs = chrome_trace_events(tl)
    waits = [e for e in evs if e.get("cat") == "mpi"]
    assert waits, "trace=True runs must record mpi.wait spans"
    # Every slice re-encodes its exact span and lands on a wait track.
    for e in waits:
        assert e["tid"] >= TID_WAIT_BASE
        assert e["args"]["duration_ns"] == e["args"]["dur_ns"]
