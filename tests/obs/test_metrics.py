"""The metrics registry: instruments, registry semantics, disabled cost."""

import time

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_basics():
    c = Counter("x", "help text")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert c.snapshot() == {"type": "counter", "value": 4}
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_high_water():
    g = Gauge("depth")
    g.set(5)
    g.set(2)
    g.inc(10)
    g.dec(11)
    assert g.value == 1
    assert g.high == 12
    snap = g.snapshot()
    assert snap["type"] == "gauge" and snap["high"] == 12


def test_histogram_buckets():
    h = Histogram("lat", buckets=(10, 100, 1000))
    for v in (5, 10, 11, 100, 500, 5000):
        h.observe(v)
    assert h.count == 6
    assert h.sum == 5626
    # per-bucket: ≤10 gets {5,10}; ≤100 gets {11,100}; ≤1000 gets {500};
    # overflow gets {5000}
    assert h.counts == [2, 2, 1, 1]
    assert h.mean == pytest.approx(5626 / 6)
    snap = h.snapshot()
    assert snap["buckets"] == [10, 100, 1000]
    assert snap["counts"] == [2, 2, 1, 1]


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(10, 10))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(10, 5))


def test_registry_get_or_create_and_type_collision():
    reg = MetricsRegistry()
    c1 = reg.counter("a.b")
    c2 = reg.counter("a.b")
    assert c1 is c2
    assert len(reg) == 1 and "a.b" in reg
    with pytest.raises(TypeError):
        reg.gauge("a.b")
    reg.gauge("a.g")
    reg.histogram("a.h", buckets=(1, 2))
    assert list(reg.names()) == ["a.b", "a.g", "a.h"]
    snap = reg.snapshot()
    assert set(snap) == {"a.b", "a.g", "a.h"}
    assert snap["a.h"]["type"] == "histogram"


def test_registry_render_mentions_every_instrument():
    reg = MetricsRegistry()
    reg.counter("ev.fired").inc(7)
    reg.gauge("heap").set(3)
    h = reg.histogram("res_ns", buckets=(100, 1000))
    h.observe(50)
    h.observe(5000)
    text = reg.render()
    assert "ev.fired" in text and "7" in text
    assert "heap" in text and "(high 3)" in text
    assert "res_ns" in text and "n=2" in text and ">1000:1" in text


def test_instruments_json_serializable():
    import json

    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.histogram("h").observe(5)
    json.dumps(reg.snapshot())  # must not raise


def _engine_event_storm(metrics, n=20_000):
    """Schedule-and-fire n events through a real Engine."""
    from repro.simx.engine import Engine

    eng = Engine(metrics=metrics)
    for i in range(n):
        eng.schedule_at(i, lambda: None)
    eng.run()
    return eng


def test_disabled_metrics_overhead_is_one_attribute_check():
    """Acceptance criterion: disabled-mode cost on the engine hot path is
    a single cached-attribute test.  Benchmarked against enabled mode
    with alternating best-of-N timing (min is robust to CI scheduler
    noise); the disabled path must not be slower than the enabled one
    plus generous jitter headroom."""
    # warm-up / fairness: run both once before timing
    _engine_event_storm(None, n=1000)
    _engine_event_storm(MetricsRegistry(), n=1000)

    disabled_s = enabled_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        _engine_event_storm(None)
        disabled_s = min(disabled_s, time.perf_counter() - t0)

        reg = MetricsRegistry()
        t0 = time.perf_counter()
        _engine_event_storm(reg)
        enabled_s = min(enabled_s, time.perf_counter() - t0)
        assert reg.get("engine.events.fired").value == 20_000

    assert disabled_s <= enabled_s * 2.0


def test_engine_instrument_counts_exact():
    from repro.simx.engine import Engine

    reg = MetricsRegistry()
    eng = Engine(metrics=reg)
    for i in range(5):
        eng.schedule_at(10 * i, lambda: None)
    eng.run()
    assert reg.get("engine.events.scheduled").value == 5
    assert reg.get("engine.events.fired").value == 5
    assert reg.get("engine.heap.depth").high >= 1


def test_render_prom_counters_gauges():
    reg = MetricsRegistry()
    reg.counter("attr.cells", "cells attributed").inc(3)
    g = reg.gauge("sched.runnable", "segments resident")
    g.set(5)
    g.set(2)
    text = reg.render_prom()
    assert "# HELP repro_attr_cells_total cells attributed" in text
    assert "# TYPE repro_attr_cells_total counter" in text
    assert "repro_attr_cells_total 3" in text
    assert "repro_sched_runnable 2" in text
    assert "repro_sched_runnable_high 5" in text
    assert text.endswith("\n")


def test_render_prom_histogram_is_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("net.delay_ns", "delays", buckets=(10, 100, 1000))
    for v in (5, 5, 50, 5000):
        h.observe(v)
    text = reg.render_prom()
    assert '# TYPE repro_net_delay_ns histogram' in text
    assert 'repro_net_delay_ns_bucket{le="10"} 2' in text
    assert 'repro_net_delay_ns_bucket{le="100"} 3' in text
    assert 'repro_net_delay_ns_bucket{le="1000"} 3' in text
    assert 'repro_net_delay_ns_bucket{le="+Inf"} 4' in text
    assert "repro_net_delay_ns_sum 5060" in text
    assert "repro_net_delay_ns_count 4" in text


def test_render_prom_is_byte_stable():
    def build():
        reg = MetricsRegistry()
        reg.counter("b.second").inc(2)
        reg.counter("a.first").inc(1)
        reg.histogram("c.h", buckets=(1, 2)).observe(1.5)
        return reg.render_prom()

    one, two = build(), build()
    assert one == two
    # sorted by mangled name regardless of registration order
    lines = [ln for ln in one.splitlines() if not ln.startswith("#")]
    assert lines[0].startswith("repro_a_first_total")
