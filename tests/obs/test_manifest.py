"""Run manifests: provenance completeness and re-runnability."""

import json

from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest, calibration_constants


def test_calibration_constants_cover_every_subsystem():
    c = calibration_constants()
    assert set(c) == {"network", "scheduler", "smm", "machine", "work_units"}
    assert c["network"]["latency_ns"] > 0
    assert c["smm"]["entry_latency_ns"] > 0
    assert c["work_units"]["EP"]["A"] > 0
    json.dumps(c)  # JSON-able


def test_manifest_records_environment_and_cells(tmp_path):
    m = RunManifest(command="table2", params={"seed": 1, "quick": True})
    m.plan_cell(bench="EP", cls="A", nodes=2, smm=0, base_seed=1)
    m.add_cell("EP.A n=2 smm=0", mean_s=2.89, values_s=[2.89])
    d = m.to_dict()
    assert d["schema"] == MANIFEST_SCHEMA
    assert d["command"] == "table2"
    assert d["params"] == {"seed": 1, "quick": True}
    assert d["version"] and d["python"] and d["platform"]
    assert d["created_unix"] > 0
    assert d["matrix"] == [
        {"bench": "EP", "cls": "A", "nodes": 2, "smm": 0, "base_seed": 1}
    ]
    cell = d["cells"][0]
    assert cell["label"] == "EP.A n=2 smm=0"
    assert cell["mean_s"] == 2.89
    assert cell["at_wall_s"] >= 0
    assert d["wall_s"] >= cell["at_wall_s"]

    path = tmp_path / "m.json"
    m.write(str(path))
    written = json.loads(path.read_text())
    # wall_s / elapsed_monotonic_s are sampled at serialization time;
    # everything else round-trips
    live = json.loads(m.to_json())
    assert written.pop("wall_s") <= live.pop("wall_s")
    assert written.pop("elapsed_monotonic_s") <= live.pop("elapsed_monotonic_s")
    assert written == live


def test_manifest_v2_mode_durations_and_atomicity(tmp_path):
    m = RunManifest(command="table2", params={}, mode="journal")
    m.add_cell("EP.A n=2 rpn=1 smm=0", id="EP.A n=2 rpn=1 smm=0",
               status="ok", attempts=2, duration_s=0.25, seed=32)
    d = m.to_dict()
    assert d["schema"] == 2
    assert d["mode"] == "journal"
    cell = d["cells"][0]
    assert cell["status"] == "ok" and cell["attempts"] == 2
    assert cell["duration_s"] == 0.25
    assert d["elapsed_monotonic_s"] >= 0

    # write is atomic: a failure mid-serialization must not clobber the
    # previous manifest (a later --resume reads this file)
    path = tmp_path / "m.json"
    m.write(str(path))
    before = path.read_text()
    import repro.obs.manifest as mod

    original = mod.calibration_constants
    mod.calibration_constants = lambda: (_ for _ in ()).throw(RuntimeError())
    try:
        try:
            m.write(str(path))
        except RuntimeError:
            pass
        assert path.read_text() == before
    finally:
        mod.calibration_constants = original


def test_manifest_matrix_is_sufficient_to_rerun_a_cell():
    """The acceptance criterion: re-running from the manifest's matrix
    reproduces the recorded result exactly (the simulation is
    deterministic given the recorded seed)."""
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config

    m = RunManifest(command="test", params={})
    spec = dict(bench="EP", cls="A", nodes=2, ranks_per_node=1, smm=2,
                base_seed=42)
    m.plan_cell(**spec)
    cfg = NasConfig(spec["bench"], NasClass(spec["cls"]), nodes=spec["nodes"],
                    ranks_per_node=spec["ranks_per_node"])
    first = run_nas_config(cfg, smm=spec["smm"], seed=spec["base_seed"])
    m.add_cell("EP.A n=2 rpn=1 smm=2", mean_s=first)

    # ... later, someone re-runs purely from the manifest JSON:
    rec = json.loads(m.to_json())
    cell = rec["matrix"][0]
    cfg2 = NasConfig(cell["bench"], NasClass(cell["cls"]), nodes=cell["nodes"],
                     ranks_per_node=cell["ranks_per_node"])
    again = run_nas_config(cfg2, smm=cell["smm"], seed=cell["base_seed"])
    assert again == rec["cells"][0]["mean_s"]


def test_harness_builder_fills_manifest_and_metrics():
    from repro.harness.mpi_tables import build_table
    from repro.obs import MetricsRegistry

    m = RunManifest(command="table2", params={"quick": True})
    reg = MetricsRegistry()
    halves = build_table("EP", quick=True, reps=1, seed=1,
                         manifest=m, metrics=reg)
    assert set(halves) == {1, 4}
    n_cells = sum(3 * len(rows) for rows in halves.values())
    assert len(m.matrix) == n_cells
    assert len(m.cells) == n_cells
    assert all("base_seed" in c for c in m.matrix)
    assert reg.get("smm.entries").value > 0
    assert reg.get("net.messages").value > 0
    assert reg.get("engine.events.fired").value > 0
