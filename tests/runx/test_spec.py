"""Cell specs/results: serialization, seed derivation, registry."""

import json

import pytest

from repro.core.experiment import rep_seed, smm_cell_seed
from repro.runx.spec import (
    ATTEMPT_SEED_STRIDE,
    FAILED,
    OK,
    CellResult,
    CellSpec,
    attempt_seed,
)


def test_spec_round_trips_through_json():
    spec = CellSpec(id="EP.A n=2 rpn=1 smm=1", fn="nas",
                    params={"bench": "EP", "smm": 1, "reps": 3}, base_seed=32)
    rec = json.loads(json.dumps(spec.to_record()))
    assert CellSpec.from_record(rec) == spec


def test_result_round_trips_through_json():
    res = CellResult(id="x", status=OK, value={"values": [1.5]}, attempts=2,
                     duration_s=0.25, seed=7,
                     attempt_errors=["attempt 0: boom"])
    rec = json.loads(json.dumps(res.to_record()))
    assert rec["kind"] == "cell"
    back = CellResult.from_record(rec)
    assert back == res
    assert back.ok


def test_failed_result_defaults():
    res = CellResult.from_record({"id": "y"})
    assert res.status == FAILED and not res.ok and res.value is None


def test_attempt_seed_is_deterministic_and_attempt0_is_base():
    assert attempt_seed(42, 0) == 42
    assert attempt_seed(42, 3) == 42 + 3 * ATTEMPT_SEED_STRIDE
    assert attempt_seed(42, 3) == attempt_seed(42, 3)


def test_position_derived_seed_helpers_match_legacy_formulas():
    # These strides are load-bearing: they must equal the formulas the
    # legacy serial builders used, or resumed/parallel sweeps would stop
    # being bit-identical to historical runs.
    assert rep_seed(5, 2) == 5 + 7919 * 2
    assert smm_cell_seed(1, 2) == 1 + 31 * 2
    assert smm_cell_seed(1, 1, htt=True) == 1 + 31 + 977


def test_registry_resolves_known_and_dotted_names():
    from repro.runx.cells import resolve, synthetic_cell

    assert resolve("synthetic") is synthetic_cell
    assert resolve("repro.runx.cells:synthetic_cell") is synthetic_cell
    with pytest.raises(ValueError, match="unknown cell executor"):
        resolve("no_such_cell")


def test_synthetic_cell_is_seed_deterministic():
    from repro.runx.cells import run_cell

    a = run_cell("synthetic", {"value": 2.0, "reps": 3}, seed=9)
    b = run_cell("synthetic", {"value": 2.0, "reps": 3}, seed=9)
    c = run_cell("synthetic", {"value": 2.0, "reps": 3}, seed=10)
    assert a == b
    assert a != c
    assert len(a["values"]) == 3
