"""Graceful drain: SIGINT/SIGTERM finish in-flight cells, keep the
journal whole, and leave a resumable run behind (exit 130)."""

import os
import signal
import subprocess
import sys
import time

from repro.runx import Journal, SweepRunner, load_resume
from repro.runx.spec import CellSpec

SYN = [
    CellSpec(id=f"syn {i}", fn="synthetic",
             params={"value": float(i), "reps": 2}, base_seed=100 + i)
    for i in range(6)
]


def _env():
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    from repro.runx.chaos import PLAN_ENV

    env.pop(PLAN_ENV, None)
    return env


def test_drain_mid_sweep_returns_partial_results(tmp_path):
    man = str(tmp_path / "run.json")
    journal = Journal(man)
    journal.write_header({"command": "t"})
    runner = SweepRunner(isolation="inline", journal=journal)
    fired = []

    def drain_after_two(msg):
        fired.append(msg)
        if len(fired) == 2:
            runner.request_drain()

    runner.progress = drain_after_two
    results = runner.run(SYN)
    journal.close()
    assert runner.draining
    assert len(results) == 2
    # every returned cell is journaled; no torn or half-run cells
    _, cells = load_resume(man)
    assert set(cells) == set(results)


def test_drained_run_resumes_to_completion(tmp_path):
    man = str(tmp_path / "run.json")
    journal = Journal(man)
    journal.write_header({"command": "t"})
    runner = SweepRunner(isolation="inline", journal=journal)
    runner.progress = lambda msg: runner.request_drain()
    partial = runner.run(SYN)
    journal.close()
    assert 0 < len(partial) < len(SYN)

    _, completed = load_resume(man)
    resumed = SweepRunner(isolation="inline").run(SYN, completed=completed)
    assert set(resumed) == {s.id for s in SYN}
    clean = SweepRunner(isolation="inline").run(SYN)
    assert {k: v.value for k, v in resumed.items()} \
        == {k: v.value for k, v in clean.items()}


def test_drain_before_start_runs_nothing(tmp_path):
    runner = SweepRunner(isolation="inline")
    runner.request_drain()
    assert runner.run(SYN) == {}


def test_sigint_drains_cli_sweep_with_resume_hint(tmp_path):
    """The satellite end-to-end: SIGINT a real sweep, get exit 130, an
    intact journal, a resume hint, and a resume that completes."""
    man = str(tmp_path / "sig.json")
    part = man + ".part.jsonl"
    sweep = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "table2", "--quick",
         "--jobs", "2", "--manifest", man],
        env=_env(), cwd=str(tmp_path),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if os.path.exists(part) and sum(1 for _ in open(part)) >= 3:
            break
        time.sleep(0.05)
        assert sweep.poll() is None, "sweep finished before the signal"
    sweep.send_signal(signal.SIGINT)
    _, err = sweep.communicate(timeout=120)
    assert sweep.returncode == 130, err
    assert "draining" in err
    assert f"--resume {man}" in err
    assert os.path.exists(part), "journal must survive the drain"
    assert not os.path.exists(man), "a drained run has no final manifest"
    header, cells = load_resume(man)
    assert header["command"] == "table2"
    assert cells, "the drain must have preserved completed cells"

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "table2", "--quick",
         "--resume", man],
        env=_env(), cwd=str(tmp_path), capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert os.path.exists(man) and not os.path.exists(part)
