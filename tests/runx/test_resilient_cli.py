"""End-to-end acceptance: the CLI survives kills, resumes byte-identically,
runs parallel sweeps deterministically, and degrades gracefully.

These spawn real sweeps (worker subprocesses over the quick EP matrix),
so they are the slowest tests in the runx suite — but they are the
acceptance criteria, verbatim.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.runx.chaos import PLAN_ENV, FaultPlan


@pytest.fixture(scope="module")
def legacy_table2():
    """The uninterrupted legacy serial table2 --quick output."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "table2", "--quick"],
        capture_output=True, text=True, env=_env(), check=True,
    )
    return proc.stdout


def _env(**extra):
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(PLAN_ENV, None)
    env.update(extra)
    return env


def test_jobs4_is_byte_identical_to_legacy_serial(
        legacy_table2, tmp_path, capsys, monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    man = str(tmp_path / "par.json")
    assert main(["table2", "--quick", "--jobs", "4", "--manifest", man]) == 0
    assert capsys.readouterr().out == legacy_table2
    doc = json.load(open(man))
    assert doc["schema"] == 2 and doc["mode"] == "journal"
    assert all(c["status"] == "ok" for c in doc["cells"])
    assert all(c["duration_s"] > 0 for c in doc["cells"])
    assert not os.path.exists(man + ".part.jsonl")  # finalized


def test_kill9_then_resume_is_byte_identical(legacy_table2, tmp_path):
    man = str(tmp_path / "killed.json")
    part = man + ".part.jsonl"
    sweep = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "table2", "--quick",
         "--jobs", "2", "--manifest", man],
        env=_env(), cwd=str(tmp_path),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    # SIGKILL the whole sweep once a handful of cells are checkpointed.
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if os.path.exists(part) and sum(1 for _ in open(part)) >= 5:
            break
        time.sleep(0.05)
        assert sweep.poll() is None, "sweep finished before we could kill it"
    sweep.send_signal(signal.SIGKILL)
    sweep.wait()
    assert os.path.exists(part), "journal must survive the kill"
    assert not os.path.exists(man), "no manifest may exist for a dead run"

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "table2", "--quick",
         "--resume", man],
        env=_env(), cwd=str(tmp_path), capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "cells already complete" in resumed.stderr
    assert resumed.stdout == legacy_table2
    doc = json.load(open(man))
    assert any(c.get("resumed") for c in doc["cells"])
    assert not os.path.exists(part)


def test_failed_cells_render_as_dash_and_exit_nonzero(
        tmp_path, capsys, monkeypatch):
    """Graceful degradation: an unrecoverable cell yields the paper's "-"
    and a failure summary, not a traceback or a dead sweep."""
    plan = str(tmp_path / "plan.json")
    FaultPlan.from_rules(
        [{"match": "EP.A n=2 rpn=1*", "fault": "kill"}]).write(plan)
    monkeypatch.setenv(PLAN_ENV, plan)
    monkeypatch.chdir(tmp_path)
    rc = main(["table2", "--quick", "--jobs", "2",
               "--manifest", str(tmp_path / "deg.json")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "Table 2" in captured.out  # table still rendered
    doc = json.load(open(tmp_path / "deg.json"))
    failed = [c for c in doc["cells"] if c["status"] == "failed"]
    assert len(failed) == 3  # smm 0/1/2 of the killed row
    assert all("signal 9" in c["error"] for c in failed)
    # the journal stays behind so --resume can retry the failures
    assert os.path.exists(str(tmp_path / "deg.json.part.jsonl"))


def test_resume_refuses_mismatched_command(tmp_path, capsys):
    from repro.runx import Journal

    man = str(tmp_path / "other.json")
    Journal(man).write_header({"command": "figure2", "seed": 1})
    assert main(["table2", "--quick", "--resume", man]) == 2
