"""The sweep engine: isolation, retries, watchdog, resume, parallelism.

Process-isolation tests spawn real worker subprocesses on synthetic
cells (no simulation), so each costs one interpreter start, not a sweep.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.runx import Journal, SweepRunner, load_resume
from repro.runx.spec import CellResult, CellSpec, attempt_seed

SYN = [
    CellSpec(id=f"syn {i}", fn="synthetic",
             params={"value": float(i), "reps": 2}, base_seed=100 + i)
    for i in range(6)
]


def test_inline_sweep_runs_every_cell():
    reg = MetricsRegistry()
    results = SweepRunner(isolation="inline", metrics=reg).run(SYN)
    assert set(results) == {s.id for s in SYN}
    assert all(r.ok and r.attempts == 1 for r in results.values())
    assert reg.get("runx.cells.ok").value == len(SYN)
    assert reg.get("runx.cells.failed").value == 0


def test_inline_cell_exception_is_a_failed_result_not_a_dead_sweep():
    specs = [
        CellSpec(id="good", fn="synthetic", params={"value": 1.0}),
        CellSpec(id="bad", fn="synthetic", params={"raise": "boom"}),
    ]
    results = SweepRunner(isolation="inline").run(specs)
    assert results["good"].ok
    assert not results["bad"].ok
    assert "boom" in results["bad"].error


def test_duplicate_ids_rejected():
    with pytest.raises(ValueError, match="duplicate cell ids"):
        SweepRunner(isolation="inline").run([SYN[0], SYN[0]])


def test_retry_uses_derived_seeds_and_backoff_is_bounded():
    """An always-failing cell stops after `retries` extra attempts."""
    reg = MetricsRegistry()
    spec = CellSpec(id="f", fn="synthetic", params={"raise": "flaky"},
                    base_seed=7)
    res = SweepRunner(isolation="inline", retries=2, backoff_s=0.0,
                      metrics=reg).run([spec])["f"]
    assert not res.ok
    assert res.attempts == 3
    assert res.seed == attempt_seed(7, 2)
    assert len(res.attempt_errors) == 3
    assert reg.get("runx.cells.retried").value == 2


def test_resume_skips_completed_cells():
    reg = MetricsRegistry()
    prior = {SYN[0].id: CellResult(id=SYN[0].id, status="ok",
                                   value={"values": [9.0]})}
    results = SweepRunner(isolation="inline", metrics=reg).run(
        SYN, completed=prior)
    assert results[SYN[0].id].resumed
    assert results[SYN[0].id].value == {"values": [9.0]}  # not re-run
    assert reg.get("runx.cells.resumed").value == 1
    assert reg.get("runx.cells.started").value == len(SYN) - 1


def test_failed_prior_cells_are_rerun_on_resume():
    prior = {SYN[1].id: CellResult(id=SYN[1].id, status="failed",
                                   error="earlier crash")}
    results = SweepRunner(isolation="inline").run(SYN, completed=prior)
    assert results[SYN[1].id].ok and not results[SYN[1].id].resumed


def test_parallel_inline_results_identical_to_serial():
    serial = SweepRunner(isolation="inline").run(SYN)
    parallel = SweepRunner(isolation="inline", jobs=4).run(SYN)
    assert {k: v.value for k, v in serial.items()} == \
        {k: v.value for k, v in parallel.items()}


def test_journal_records_cells_as_they_complete(tmp_path):
    man = str(tmp_path / "sweep.json")
    journal = Journal(man)
    journal.write_header({"command": "syn"})
    SweepRunner(isolation="inline", journal=journal).run(SYN)
    _, cells = load_resume(man)
    assert set(cells) == {s.id for s in SYN}
    assert all(c.ok for c in cells.values())


# -- process isolation (real worker subprocesses) ----------------------------

def test_process_isolation_runs_and_matches_inline():
    inline = SweepRunner(isolation="inline").run(SYN[:2])
    proc = SweepRunner(isolation="process").run(SYN[:2])
    assert {k: v.value for k, v in inline.items()} == \
        {k: v.value for k, v in proc.items()}


def test_process_crash_is_isolated():
    """A cell that raises inside the worker reports FAILED in-band."""
    specs = [
        CellSpec(id="ok", fn="synthetic", params={"value": 3.0}),
        CellSpec(id="crash", fn="synthetic", params={"raise": "segv-ish"}),
    ]
    results = SweepRunner(isolation="process").run(specs)
    assert results["ok"].ok
    assert not results["crash"].ok
    assert "segv-ish" in results["crash"].error


def test_watchdog_timeout_kills_hung_cell():
    reg = MetricsRegistry()
    specs = [CellSpec(id="hang", fn="synthetic",
                      params={"sleep_s": 60.0})]
    res = SweepRunner(isolation="process", timeout_s=3.0,
                      metrics=reg).run(specs)["hang"]
    assert not res.ok
    assert "watchdog timeout" in res.error
    assert reg.get("runx.cells.timeouts").value == 1


def test_worker_metrics_are_merged_into_parent_registry():
    reg = MetricsRegistry()
    spec = CellSpec(id="nas tiny", fn="nas",
                    params={"bench": "EP", "cls": "A", "nodes": 1, "rpn": 1,
                            "smm": 0, "reps": 1}, base_seed=1)
    res = SweepRunner(isolation="process", metrics=reg).run([spec])["nas tiny"]
    assert res.ok
    assert reg.get("engine.events.fired").value > 0
