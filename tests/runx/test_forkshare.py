"""Warmup-prefix sharing (repro.runx.forkshare).

Four groups:

* Store semantics — the :class:`SnapshotStore` LRU counts hits, misses,
  evictions, and forks, and caps live prefixes.

* Eligibility — every gate that must send a cell down the cold path:
  ``REPRO_SNAPSHOT=off``, SMM 0, a plain table sweep (no ``interval``
  key), faults/attr rewrites, and intervals below the rollout phase
  spread (where the phase draws themselves become interval-dependent).

* Correctness — forked per-repetition values are *equal* to the cold
  replay's (the byte-level pin lives in
  ``tests/integration/test_fork_identity.py``), and a prefix refuses
  intervals below its base.

* Planning — :func:`repro.harness.mpi_tables.interval_sweep_specs`
  emits the prefix-shareable shape and the sweep runner groups those
  cells into one batch unit, smallest interval first.
"""

import pytest

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import DEFAULT_PHASE_SPREAD_NS, NasConfig, run_nas_config
from repro.core.experiment import rep_seed, smm_cell_seed
from repro.harness.mpi_tables import interval_sweep_specs
from repro.machine.clock import JIFFY_NS
from repro.runx.forkshare import (
    SnapshotStore,
    WarmPrefix,
    fork_supported,
    forked_nas_values,
    global_store,
    prefix_digest,
    snapshot_mode,
)
from repro.runx.runner import SweepRunner
from repro.runx.spec import CellSpec

needs_fork = pytest.mark.skipif(not fork_supported(),
                                reason="needs os.fork")


@pytest.fixture(autouse=True)
def _fork_path_on(monkeypatch):
    # These tests exercise the fork path itself, so they must not
    # inherit the CI cold-path leg's REPRO_SNAPSHOT=off (tests that
    # check the off behaviour set it explicitly, overriding this).
    monkeypatch.setenv("REPRO_SNAPSHOT", "auto")

EP_PARAMS = {"bench": "EP", "cls": "A", "nodes": 2, "rpn": 1,
             "smm": 2, "reps": 2, "interval": 1000}


def _ep_cfg():
    return NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=1)


# -- escape hatch -------------------------------------------------------------

@pytest.mark.parametrize("spelling", ["off", "OFF", "0", "no", "false"])
def test_snapshot_mode_off_spellings(monkeypatch, spelling):
    monkeypatch.setenv("REPRO_SNAPSHOT", spelling)
    assert snapshot_mode() == "off"


@pytest.mark.parametrize("spelling", [None, "auto", "on", "weird"])
def test_snapshot_mode_defaults_to_auto(monkeypatch, spelling):
    if spelling is None:
        monkeypatch.delenv("REPRO_SNAPSHOT", raising=False)
    else:
        monkeypatch.setenv("REPRO_SNAPSHOT", spelling)
    assert snapshot_mode() == "auto"


# -- digest keying ------------------------------------------------------------

def test_prefix_digest_keys_on_every_axis():
    ref = prefix_digest("FT", "A", 4, 4, False, 2, 7)
    assert prefix_digest("FT", "A", 4, 4, False, 2, 7) == ref  # stable
    assert prefix_digest("BT", "A", 4, 4, False, 2, 7) != ref
    assert prefix_digest("FT", "B", 4, 4, False, 2, 7) != ref
    assert prefix_digest("FT", "A", 8, 4, False, 2, 7) != ref
    assert prefix_digest("FT", "A", 4, 1, False, 2, 7) != ref
    assert prefix_digest("FT", "A", 4, 4, True, 2, 7) != ref
    assert prefix_digest("FT", "A", 4, 4, False, 1, 7) != ref
    assert prefix_digest("FT", "A", 4, 4, False, 2, 8) != ref


def test_prefix_digest_has_no_interval_axis():
    """The interval is what the fork retargets — keying on it would
    shatter the sharing the whole module exists for."""
    import inspect

    assert "interval" not in inspect.signature(prefix_digest).parameters


# -- store semantics ----------------------------------------------------------

def _dummy_prefix():
    return WarmPrefix(cluster=None, job=None, base_interval_jiffies=1000,
                      cached_value=1.0, done_early=True)


def test_store_counts_hits_and_misses():
    store = SnapshotStore(max_entries=4)
    assert store.get("aa") is None
    store.put("aa", _dummy_prefix())
    assert store.get("aa") is not None
    assert store.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                             "forks": 0, "entries": 1}


def test_store_lru_evicts_oldest_touched():
    store = SnapshotStore(max_entries=2)
    store.put("a", _dummy_prefix())
    store.put("b", _dummy_prefix())
    assert store.get("a") is not None  # refresh "a": "b" is now oldest
    store.put("c", _dummy_prefix())   # evicts "b"
    assert store.get("b") is None
    assert store.get("a") is not None and store.get("c") is not None
    assert store.stats()["evictions"] == 1
    assert len(store) == 2


def test_store_cap_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT_CACHE_MAX", "3")
    assert SnapshotStore().max_entries == 3
    monkeypatch.delenv("REPRO_SNAPSHOT_CACHE_MAX")
    assert SnapshotStore(max_entries=5).max_entries == 5


def test_record_fork_counts():
    store = SnapshotStore()
    store.record_fork()
    store.record_fork()
    assert store.stats()["forks"] == 2


# -- eligibility gates --------------------------------------------------------

def test_off_mode_forces_cold_path(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT", "off")
    assert forked_nas_values(dict(EP_PARAMS), seed=3) is None


def test_smm_zero_is_cold():
    p = dict(EP_PARAMS, smm=0)
    assert forked_nas_values(p, seed=3) is None


def test_plain_table_cell_without_interval_is_cold():
    p = dict(EP_PARAMS)
    del p["interval"]
    assert forked_nas_values(p, seed=3) is None


def test_faulted_and_attributed_cells_are_cold():
    assert forked_nas_values(
        dict(EP_PARAMS, faults=[{"kind": "x"}]), seed=3) is None
    assert forked_nas_values(dict(EP_PARAMS, attr=True), seed=3) is None


def test_interval_below_phase_spread_is_cold():
    """Below the rollout spread the phase draw range is clamped by the
    interval, so the prefix itself would differ per interval."""
    below = DEFAULT_PHASE_SPREAD_NS // JIFFY_NS - 1
    assert forked_nas_values(dict(EP_PARAMS, interval=below), seed=3) is None


# -- fork correctness ---------------------------------------------------------

@needs_fork
def test_forked_values_equal_cold_replay():
    seed = smm_cell_seed(3, 2, False)
    fv = forked_nas_values(dict(EP_PARAMS), seed=seed)
    assert fv is not None and len(fv) == EP_PARAMS["reps"]
    cold = [
        run_nas_config(_ep_cfg(), smm=2, seed=rep_seed(seed, r),
                       interval_jiffies=1000)
        for r in range(EP_PARAMS["reps"])
    ]
    assert fv == cold  # float-exact, not approx


@needs_fork
def test_second_interval_hits_the_warm_prefix():
    seed = smm_cell_seed(3, 2, False)
    forked_nas_values(dict(EP_PARAMS), seed=seed)
    s0 = global_store().stats()
    assert s0["misses"] == EP_PARAMS["reps"] and s0["hits"] == 0

    fv = forked_nas_values(dict(EP_PARAMS, interval=1200), seed=seed)
    assert fv is not None
    s1 = global_store().stats()
    assert s1["misses"] == s0["misses"]          # no re-warm
    assert s1["hits"] == EP_PARAMS["reps"]       # every rep reused
    cold = [
        run_nas_config(_ep_cfg(), smm=2, seed=rep_seed(seed, r),
                       interval_jiffies=1200)
        for r in range(EP_PARAMS["reps"])
    ]
    assert fv == cold


@needs_fork
def test_prefix_refuses_interval_below_its_base():
    wp = WarmPrefix.warm(_ep_cfg(), smm=2, seed=11, interval_jiffies=1000)
    assert wp is not None
    ok, reason = wp.value(800)
    assert not ok and "below" in reason


# -- sweep planning -----------------------------------------------------------

def _iv_specs(intervals=(1200, 1000, 1000, 1400), smm=2):
    return interval_sweep_specs("EP", NasClass.A, 2, 1, smm,
                                list(intervals), reps=1, seed=3)


def test_interval_sweep_specs_shape():
    specs = _iv_specs()
    assert [s.params["interval"] for s in specs] == [1000, 1200, 1400]
    assert len({s.id for s in specs}) == 3                   # unique ids
    assert len({s.base_seed for s in specs}) == 1            # shared seed
    assert specs[0].base_seed == smm_cell_seed(3, 2, False)
    assert all(s.fn == "nas" for s in specs)


def test_runner_groups_interval_cells_into_one_unit():
    other = CellSpec(id="syn", fn="synthetic",
                     params={"value": 1.0, "reps": 1}, base_seed=9)
    todo = _iv_specs() + [other]
    units = SweepRunner(isolation="process")._plan_units(todo)
    groups = [u for u in units if isinstance(u, list)]
    singles = [u for u in units if isinstance(u, CellSpec)]
    assert len(groups) == 1 and len(singles) == 1
    assert [s.params["interval"] for s in groups[0]] == [1000, 1200, 1400]
    assert singles[0].id == "syn"


def test_runner_never_groups_when_ineligible(monkeypatch):
    todo = _iv_specs()
    flat = [todo[0]]  # a lone interval cell is not worth a batch worker
    assert SweepRunner(isolation="process")._plan_units(flat) == flat

    from repro.obs.metrics import MetricsRegistry
    runner = SweepRunner(isolation="process", metrics=MetricsRegistry())
    assert all(isinstance(u, CellSpec) for u in runner._plan_units(todo))

    inline = SweepRunner(isolation="inline")
    assert all(isinstance(u, CellSpec) for u in inline._plan_units(todo))

    monkeypatch.setenv("REPRO_SNAPSHOT", "off")
    proc = SweepRunner(isolation="process")
    assert all(isinstance(u, CellSpec) for u in proc._plan_units(todo))


def test_fork_group_key_rules():
    key = SweepRunner._fork_group_key
    a, b, c = _iv_specs()
    assert key(a) == key(b) == key(c) is not None
    assert key(CellSpec(id="x", fn="synthetic",
                        params={"interval": 1000, "smm": 2})) is None
    smm0 = _iv_specs(smm=0)[0]
    assert key(smm0) is None
    plain = CellSpec(id="p", fn="nas",
                     params={k: v for k, v in a.params.items()
                             if k != "interval"}, base_seed=a.base_seed)
    assert key(plain) is None
    faulted = CellSpec(id="f", fn="nas",
                       params=dict(a.params, faults=[{"kind": "x"}]),
                       base_seed=a.base_seed)
    assert key(faulted) is None
    other_seed = CellSpec(id="s", fn="nas", params=dict(a.params),
                          base_seed=a.base_seed + 1)
    assert key(other_seed) != key(a)


def test_worker_batch_protocol_roundtrip():
    """The batch branch of the worker: one request with ``cells`` runs
    each in order and replies per-cell, with in-band per-cell errors."""
    from repro.runx.worker import _run_batch

    good = CellSpec(id="g", fn="synthetic",
                    params={"value": 2.0, "reps": 1}, base_seed=5)
    bad = CellSpec(id="b", fn="synthetic",
                   params={"raise": "boom", "reps": 1}, base_seed=6)
    reply = _run_batch({"cells": [
        {"spec": good.to_record(), "attempt": 0, "seed": 5},
        {"spec": bad.to_record(), "attempt": 0, "seed": 6},
    ]})
    assert reply["ok"] is True
    r_good, r_bad = reply["results"]
    assert r_good["ok"]
    assert r_good["value"]["values"] == [2.0 + 1e-9 * rep_seed(5, 0)]
    assert not r_bad["ok"] and "boom" in r_bad["error"]
