"""The single-writer guard: concurrent journal writers fail fast."""

import multiprocessing
import os

import pytest

from repro.runx import CellResult, Journal, LockHeldError, SingleWriterLock
from repro.runx.spec import OK


def _res(cid):
    return CellResult(id=cid, status=OK, value={"values": [1.0]})


def test_second_lock_refused_with_holder_breadcrumb(tmp_path):
    path = str(tmp_path / "x.lock")
    first = SingleWriterLock(path).acquire()
    with pytest.raises(LockHeldError) as exc:
        SingleWriterLock(path).acquire()
    assert exc.value.path == path
    assert exc.value.holder.get("pid") == os.getpid()
    assert str(os.getpid()) in str(exc.value)
    first.release()


def test_release_frees_the_lock(tmp_path):
    path = str(tmp_path / "x.lock")
    lock = SingleWriterLock(path).acquire()
    assert lock.held
    lock.release()
    assert not lock.held
    SingleWriterLock(path).acquire().release()  # now free


def test_acquire_is_idempotent_while_held(tmp_path):
    lock = SingleWriterLock(str(tmp_path / "x.lock"))
    assert lock.acquire() is lock.acquire()
    lock.release()


def test_context_manager(tmp_path):
    path = str(tmp_path / "x.lock")
    with SingleWriterLock(path) as lock:
        assert lock.held
        with pytest.raises(LockHeldError):
            SingleWriterLock(path).acquire()
    SingleWriterLock(path).acquire().release()


def test_lock_file_survives_release(tmp_path):
    """Unlinking the sidecar would reopen the classic flock race; the
    file must stay behind."""
    path = str(tmp_path / "x.lock")
    with SingleWriterLock(path):
        pass
    assert os.path.exists(path)


def _hold_and_report(path, q):
    try:
        SingleWriterLock(path).acquire()
        q.put("acquired")
    except LockHeldError:
        q.put("refused")


def test_lock_excludes_across_processes(tmp_path):
    path = str(tmp_path / "x.lock")
    lock = SingleWriterLock(path).acquire()
    ctx = multiprocessing.get_context("spawn")
    q = ctx.Queue()
    proc = ctx.Process(target=_hold_and_report, args=(path, q))
    proc.start()
    assert q.get(timeout=30) == "refused"
    proc.join(30)
    lock.release()


def test_two_journals_on_same_manifest_fail_fast(tmp_path):
    """The satellite, verbatim: two concurrent runners pointed at the
    same output die with a typed error instead of interleaving."""
    man = str(tmp_path / "run.json")
    j1 = Journal(man)
    j1.write_header({"command": "t"})
    j2 = Journal(man)
    with pytest.raises(LockHeldError):
        j2.write_header({"command": "t"})
    with pytest.raises(LockHeldError):
        j2.append(_res("a"))
    # the first writer is unaffected and still owns the journal
    j1.append(_res("a"))
    j1.close()


def test_journal_close_releases_for_the_next_writer(tmp_path):
    man = str(tmp_path / "run.json")
    j1 = Journal(man)
    j1.write_header({"command": "t"})
    j1.append(_res("a"))
    j1.close()
    j2 = Journal(man)  # a later resume run
    j2.append(_res("b"))
    j2.close()


def test_journal_finalize_releases_lock(tmp_path):
    man = str(tmp_path / "run.json")
    j1 = Journal(man)
    j1.write_header({"command": "t"})
    j1.finalize()
    j2 = Journal(man)
    j2.write_header({"command": "t"})
    j2.close()
