"""runx × faults: failed-in-sim status, no-retry semantics, worker
protocol, journal hardening, and the CLI plumbing."""

import json
import os
import subprocess
import sys

import pytest

from repro.faults import FaultedRunError
from repro.obs.metrics import MetricsRegistry
from repro.runx import FAILED_IN_SIM, Journal, SweepRunner, load_resume
from repro.runx.journal import part_path
from repro.runx.spec import CellResult, CellSpec


def faulted_cell(params, seed, metrics=None):
    """Test executor (dotted-path resolved): dies of injected faults."""
    raise FaultedRunError(
        "simulated node ate it",
        events=[{"fault": "node_crash", "node": "node1", "at_ns": 42}])


FAULTY = CellSpec(id="faulty", fn="tests.runx.test_faults:faulted_cell",
                  params={}, base_seed=5)
CLEAN = CellSpec(id="clean", fn="synthetic", params={"value": 2.0},
                 base_seed=6)


def test_inline_faulted_cell_is_failed_in_sim_and_never_retried():
    reg = MetricsRegistry()
    results = SweepRunner(isolation="inline", retries=3, backoff_s=0,
                          metrics=reg).run([FAULTY, CLEAN])
    res = results["faulty"]
    assert res.status == FAILED_IN_SIM
    assert not res.ok
    assert res.attempts == 1  # deterministic: retries skipped
    assert res.fault == {"events": [
        {"fault": "node_crash", "node": "node1", "at_ns": 42}]}
    assert "simulated node ate it" in res.error
    assert results["clean"].ok  # sweep degraded gracefully
    assert reg.get("runx.cells.failed_in_sim").value == 1
    assert reg.get("runx.cells.failed").value == 0
    assert reg.get("runx.cells.retried").value == 0


def test_process_isolation_reports_failed_in_sim_in_band():
    results = SweepRunner(isolation="process", retries=2, backoff_s=0,
                          timeout_s=120).run([FAULTY])
    res = results["faulty"]
    assert res.status == FAILED_IN_SIM
    assert res.attempts == 1
    assert res.fault["events"][0]["fault"] == "node_crash"


def test_failed_in_sim_round_trips_through_journal(tmp_path):
    manifest = str(tmp_path / "m.json")
    journal = Journal(manifest)
    journal.write_header({"command": "t"})
    SweepRunner(isolation="inline", journal=journal).run([FAULTY])
    _, cells = load_resume(manifest)
    back = cells["faulty"]
    assert back.status == FAILED_IN_SIM
    assert back.fault["events"][0]["at_ns"] == 42
    assert not back.ok  # a resumed sweep re-runs it (and fails it again)


def test_cell_result_fault_field_round_trip():
    res = CellResult(id="x", status=FAILED_IN_SIM, seed=1,
                     fault={"events": [{"fault": "node_hang"}]})
    rec = res.to_record()
    assert rec["fault"] == {"events": [{"fault": "node_hang"}]}
    assert CellResult.from_record(rec).fault == res.fault


def test_clean_result_record_has_no_fault_key():
    rec = CellResult(id="x", status="ok", value={"values": [1.0]}).to_record()
    assert "fault" not in rec


# -- journal hardening (the torn-final-line bug) ------------------------------

def test_resume_append_repairs_torn_final_line(tmp_path):
    manifest = str(tmp_path / "m.json")
    journal = Journal(manifest)
    journal.write_header({"command": "t"})
    journal.append(CellResult(id="a", status="ok", value={"v": 1}))
    # Simulate a crash mid-append: a torn, newline-less final line.
    with open(journal.path, "a", encoding="utf-8") as fp:
        fp.write('{"kind":"cell","id":"b","sta')
    journal.close()  # a crashed process drops its flock with it
    resumed = Journal(manifest)  # fresh process: no write_header
    resumed.append(CellResult(id="c", status="ok", value={"v": 3}))
    header, cells = load_resume(manifest)
    # The torn record is lost (only it); 'a' and 'c' both survive.
    assert set(cells) == {"a", "c"}
    assert header["command"] == "t"


def test_valid_json_but_malformed_cell_record_is_skipped(tmp_path):
    manifest = str(tmp_path / "m.json")
    journal = Journal(manifest)
    journal.write_header({"command": "t"})
    journal.append(CellResult(id="a", status="ok", value={"v": 1}))
    with open(journal.path, "a", encoding="utf-8") as fp:
        fp.write('{"kind":"cell","status":"ok"}\n')      # no id
        fp.write('{"kind":"cell","id":"d","attempt_errors":7}\n')  # bad type
    _, cells = load_resume(manifest)
    assert set(cells) == {"a"}


# -- CLI plumbing -------------------------------------------------------------

def _cli(*argv, env_extra=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    return subprocess.run([sys.executable, "-m", "repro.cli", *argv],
                          capture_output=True, text=True, env=env)


@pytest.mark.parametrize("argv", [
    ("table1", "--timeout", "0"),
    ("table1", "--timeout", "-3"),
    ("table1", "--retries", "-1"),
    ("table1", "--jobs", "0"),
    ("trace", "--cls", "Z"),
])
def test_cli_validation_is_one_line_and_exit_2(argv):
    proc = _cli(*argv)
    assert proc.returncode == 2
    err = [l for l in proc.stderr.splitlines() if "error:" in l]
    assert len(err) == 1


def test_cli_bad_fault_plan_exits_2(tmp_path):
    bad = tmp_path / "plan.json"
    bad.write_text('{"not": "a list"}')
    proc = _cli("table2", "--quick", "--fault-plan", str(bad))
    assert proc.returncode == 2
    assert "bad fault plan" in proc.stderr


def test_with_faults_rewrites_only_matching_specs():
    from repro.cli import _with_faults
    from repro.faults import FaultPlan, FaultRule

    specs = [CellSpec(id="BT.A n=4", fn="nas", params={"x": 1}, base_seed=3),
             CellSpec(id="EP.A n=2", fn="nas", params={"x": 2}, base_seed=4)]
    plan = FaultPlan([FaultRule(fault="node_crash", match="BT.*")])
    out, hit = _with_faults(specs, plan)
    assert hit == 1
    assert out[0].params["faults"][0]["fault"] == "node_crash"
    assert out[0].base_seed == 3
    assert "faults" not in out[1].params
    assert out[1] is specs[1]  # untouched specs pass through identically
    # The rewrite must change the digest: faulted work is different work.
    assert out[0].digest() != specs[0].digest()
