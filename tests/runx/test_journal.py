"""The checkpoint journal: durability, torn lines, resume sources."""

import json

import pytest

from repro.obs.atomic import atomic_write_text, fsync_append
from repro.runx.journal import Journal, load_resume, part_path
from repro.runx.spec import OK, CellResult


def _res(cid, value=1.0):
    return CellResult(id=cid, status=OK, value={"values": [value]})


def test_journal_append_and_load(tmp_path):
    man = str(tmp_path / "run.json")
    j = Journal(man)
    j.write_header({"command": "table2", "seed": 1, "reps": 1, "quick": True})
    j.append(_res("a"))
    j.append(_res("b", 2.0))
    header, cells = load_resume(man)
    assert header["command"] == "table2" and header["seed"] == 1
    assert set(cells) == {"a", "b"}
    assert cells["b"].value == {"values": [2.0]}


def test_journal_skips_torn_final_line(tmp_path):
    man = str(tmp_path / "run.json")
    j = Journal(man)
    j.write_header({"command": "t"})
    j.append(_res("a"))
    with open(j.path, "a") as fp:
        fp.write('{"kind":"cell","id":"b","status":"ok","va')  # SIGKILL here
    header, cells = load_resume(man)
    assert header is not None
    assert set(cells) == {"a"}


def test_later_records_win(tmp_path):
    """A resumed sweep may re-append a cell; the newest record counts."""
    man = str(tmp_path / "run.json")
    j = Journal(man)
    j.write_header({})
    j.append(CellResult(id="a", status="failed", error="boom"))
    j.append(_res("a", 3.0))
    _, cells = load_resume(man)
    assert cells["a"].ok and cells["a"].value == {"values": [3.0]}


def test_finalize_removes_part_and_resume_falls_back_to_manifest(tmp_path):
    man = str(tmp_path / "run.json")
    j = Journal(man)
    j.write_header({"command": "table2"})
    j.append(_res("a"))
    # finalize: manifest on disk, journal gone
    doc = {"schema": 2, "command": "table2", "params": {"seed": 5},
           "cells": [dict(_res("a").to_record(), label="a")]}
    atomic_write_text(man, lambda fp: json.dump(doc, fp))
    j.finalize()
    assert not (tmp_path / part_path("run.json")).exists()
    header, cells = load_resume(man)
    assert header["seed"] == 5
    assert cells["a"].ok


def test_resume_with_nothing_on_disk_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="nothing to resume"):
        load_resume(str(tmp_path / "absent.json"))


def test_write_header_truncates_stale_journal(tmp_path):
    man = str(tmp_path / "run.json")
    j = Journal(man)
    j.write_header({"run": 1})
    j.append(_res("old"))
    j.write_header({"run": 2})
    header, cells = load_resume(man)
    assert header["run"] == 2 and not cells


def test_atomic_write_failure_leaves_target_untouched(tmp_path):
    target = tmp_path / "out.json"
    target.write_text("original")

    def boom(fp):
        fp.write("partial")
        raise RuntimeError("disk on fire")

    with pytest.raises(RuntimeError):
        atomic_write_text(str(target), boom)
    assert target.read_text() == "original"
    assert list(tmp_path.iterdir()) == [target]  # no temp litter


def test_fsync_append_appends(tmp_path):
    p = str(tmp_path / "j.jsonl")
    fsync_append(p, "one")
    fsync_append(p, "two")
    assert open(p).read() == "one\ntwo\n"
