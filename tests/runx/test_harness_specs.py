"""Harness spec builders and assemblers (no simulation: synthetic results)."""

from repro.core.experiment import smm_cell_seed
from repro.harness.figure1 import assemble_figure1, figure1_cell_specs
from repro.harness.figure2 import assemble_figure2, figure2_cell_specs
from repro.harness.htt_tables import assemble_htt_table, htt_cell_specs
from repro.harness.mpi_tables import assemble_table, table_cell_specs
from repro.runx.spec import FAILED, OK, CellResult


def _ok(spec, values):
    return CellResult(id=spec.id, status=OK, value={"values": values})


def test_table_specs_cover_matrix_with_position_derived_seeds():
    specs = table_cell_specs("EP", quick=True, reps=2, seed=5)
    # 2 rpn halves × 5 rows × 3 smm classes
    assert len(specs) == 30
    assert len({s.id for s in specs}) == 30
    for s in specs:
        assert s.fn == "nas"
        assert s.params["reps"] == 2
        assert s.base_seed == smm_cell_seed(5, s.params["smm"])


def test_assemble_table_marks_failed_and_missing_cells_as_dash():
    specs = table_cell_specs("EP", quick=True, reps=1, seed=1)
    results = {s.id: _ok(s, [10.0, 12.0]) for s in specs}
    # one failed, one missing entirely
    failed_id = specs[0].id
    missing_id = specs[1].id
    results[failed_id] = CellResult(id=failed_id, status=FAILED, error="x")
    del results[missing_id]
    halves = assemble_table("EP", quick=True, results=results)
    flat = [m for rows in halves.values() for r in rows
            for m in r.smm.values()]
    assert flat.count(None) == 2
    assert all(v == 11.0 for v in flat if v is not None)


def test_htt_specs_and_assembly_round_trip():
    specs = htt_cell_specs("FT", quick=True, reps=1, seed=3)
    # 5 rows × 3 smm × 2 htt
    assert len(specs) == 30
    for s in specs:
        assert s.base_seed == smm_cell_seed(
            3, s.params["smm"], s.params["htt"])
    rows = assemble_htt_table(
        "FT", quick=True, results={s.id: _ok(s, [7.0]) for s in specs})
    assert len(rows) == 5
    assert all(cell == (7.0, 7.0) for r in rows for cell in r.cells.values())


def test_figure1_specs_and_assembly():
    specs = figure1_cell_specs(quick=True, seed=1)
    # 2 configs × (4 cpu lines + 3 right-panel runs)
    assert len(specs) == 14
    results = {}
    for s in specs:
        if s.fn == "convolve_line":
            value = {"baseline": 1.0,
                     "points": [[iv, 2.0] for iv in s.params["intervals_ms"]]}
        else:
            value = {"points": [[k, 3.0] for k in s.params["cpus"]]}
        results[s.id] = CellResult(id=s.id, status=OK, value=value)
    data = assemble_figure1(quick=True, results=results)
    assert set(data.left) == {"CacheUnfriendly", "CacheFriendly"}
    assert len(data.left["CacheFriendly"]) == 4
    assert len(data.right["CacheFriendly"]) == 3
    assert data.baselines["CacheFriendly"][1] == 1.0


def test_figure2_failed_config_is_omitted_not_fatal():
    specs = figure2_cell_specs(quick=True, seed=1)
    assert [s.params["cpus"] for s in specs] == [1, 2, 4, 8]
    results = {
        s.id: CellResult(
            id=s.id, status=OK,
            value={"baseline": 100.0, "short_at_100ms": 99.0,
                   "points": [[iv, 50.0] for iv in s.params["intervals_ms"]]})
        for s in specs
    }
    results[specs[2].id] = CellResult(id=specs[2].id, status=FAILED,
                                      error="boom")
    data = assemble_figure2(quick=True, results=results)
    assert sorted(data.baselines) == [1, 2, 8]  # 4cpu dropped
    assert len(data.long_series) == 3
