"""The fault-injection harness, driven through real worker subprocesses."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.runx import SweepRunner
from repro.runx.chaos import PLAN_ENV, FaultPlan, FaultRule
from repro.runx.spec import CellSpec, attempt_seed


def test_rule_matching_globs_and_attempt_scope():
    plan = FaultPlan([
        FaultRule(match="EP.A n=4*", fault="kill", attempts=(0,)),
        FaultRule(match="*smm=2", fault="flake"),
    ])
    assert plan.fault_for("EP.A n=4 rpn=1 smm=0", 0).fault == "kill"
    assert plan.fault_for("EP.A n=4 rpn=1 smm=0", 1) is None  # attempt-scoped
    assert plan.fault_for("FT.B n=8 rpn=4 smm=2", 3).fault == "flake"
    assert plan.fault_for("EP.A n=1 rpn=1 smm=0", 0) is None


def test_unknown_fault_rejected():
    with pytest.raises(ValueError, match="unknown fault"):
        FaultRule(match="*", fault="meteor")


def test_plan_round_trips_through_file(tmp_path):
    plan = FaultPlan([FaultRule(match="*x*", fault="hang", attempts=(1, 2),
                                hang_s=5.0)])
    path = str(tmp_path / "plan.json")
    plan.write(path)
    back = FaultPlan.load(path)
    assert back == plan


def _chaos_run(monkeypatch, tmp_path, rules, specs, **runner_kw):
    plan_path = str(tmp_path / "plan.json")
    FaultPlan.from_rules(rules).write(plan_path)
    monkeypatch.setenv(PLAN_ENV, plan_path)
    return SweepRunner(isolation="process", backoff_s=0.0, **runner_kw).run(specs)


def test_kill_fault_becomes_failed_cell(monkeypatch, tmp_path):
    specs = [CellSpec(id="victim", fn="synthetic", params={"value": 1.0}),
             CellSpec(id="bystander", fn="synthetic", params={"value": 2.0})]
    results = _chaos_run(
        monkeypatch, tmp_path,
        [{"match": "victim", "fault": "kill"}], specs)
    assert not results["victim"].ok
    assert "signal 9" in results["victim"].error
    assert results["bystander"].ok  # crash isolated: sweep survived


def test_corrupt_output_is_detected_and_failed(monkeypatch, tmp_path):
    specs = [CellSpec(id="garble", fn="synthetic", params={"value": 1.0})]
    results = _chaos_run(
        monkeypatch, tmp_path,
        [{"match": "garble", "fault": "corrupt"}], specs)
    assert not results["garble"].ok
    assert "no result record" in results["garble"].error


def test_transient_flake_retries_to_success_with_derived_seed(
        monkeypatch, tmp_path):
    reg = MetricsRegistry()
    specs = [CellSpec(id="flaky", fn="synthetic", params={"value": 4.0},
                      base_seed=11)]
    results = _chaos_run(
        monkeypatch, tmp_path,
        [{"match": "flaky", "fault": "flake", "attempts": [0]}],
        specs, retries=2, metrics=reg)
    res = results["flaky"]
    assert res.ok
    assert res.attempts == 2
    assert res.seed == attempt_seed(11, 1)
    assert reg.get("runx.cells.retried").value == 1
    assert reg.get("runx.cells.failed").value == 0


def test_hang_fault_is_ended_by_watchdog_then_retried(monkeypatch, tmp_path):
    reg = MetricsRegistry()
    specs = [CellSpec(id="stuck", fn="synthetic", params={"value": 1.5},
                      base_seed=3)]
    results = _chaos_run(
        monkeypatch, tmp_path,
        [{"match": "stuck", "fault": "hang", "attempts": [0], "hang_s": 60}],
        specs, retries=1, timeout_s=3.0, metrics=reg)
    res = results["stuck"]
    assert res.ok and res.attempts == 2
    assert reg.get("runx.cells.timeouts").value == 1
    assert "watchdog timeout" in res.attempt_errors[0]
