"""MPI failure semantics under injected faults: typed errors instead of
deadlocks, deterministic replay, and zero overhead when disabled."""

import time

import pytest

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.faults import FaultInjector
from repro.mpi.errors import (
    JobAbortedError,
    MpiTimeoutError,
    RankFailedError,
)

EP2 = NasConfig("EP", NasClass.A, nodes=2, ranks_per_node=1)


def _run(cfg, rules, seed=1, smm=0):
    inj = FaultInjector(rules, seed=seed)
    try:
        elapsed = run_nas_config(cfg, smm=smm, seed=seed, faults=inj)
        return elapsed, None, inj
    except JobAbortedError as exc:
        return None, exc, inj


def test_node_crash_survivors_raise_rank_failed():
    _, exc, inj = _run(EP2, [{"fault": "node_crash", "node": 1, "at_s": 0.5}])
    assert exc is not None
    assert inj.events == [
        {"fault": "node_crash", "node": "node1", "at_ns": 500_000_000}]
    # The crashed rank dies of NodeFailedError, the survivor of a typed
    # RankFailedError — nobody deadlocks.
    assert set(exc.failed) == {0, 1}
    assert "RankFailedError" in exc.failed[0]
    assert "NodeFailedError" in exc.failed[1]
    assert exc.fault_events == inj.events


def test_node_hang_times_out_in_bounded_wall_clock():
    t0 = time.monotonic()
    _, exc, inj = _run(EP2, [{"fault": "node_hang", "node": 1, "at_s": 0.5}])
    wall = time.monotonic() - t0
    assert exc is not None
    assert wall < 30.0  # no wall-clock hang, no simulated-time runaway
    assert "MpiTimeoutError" in exc.failed[0]
    assert exc.hung == [1]


def test_explicit_mpi_timeout_overrides_default():
    _, exc, _ = _run(EP2, [{"fault": "node_hang", "node": 1, "at_s": 0.5,
                            "mpi_timeout_s": 2.0}])
    assert exc is not None
    assert "2 simulated seconds" in exc.failed[0]


def test_crash_is_deterministic_across_replays():
    def outcome():
        _, exc, inj = _run(
            NasConfig("BT", NasClass.A, nodes=4, ranks_per_node=1),
            [{"fault": "node_crash", "node": 2, "at_s": 5.0}],
            seed=7, smm=2)
        assert exc is not None
        return sorted(exc.failed.items()), exc.hung, inj.events

    assert outcome() == outcome()


def test_link_delay_slows_but_completes():
    clean, _, _ = _run(EP2, [])
    slow, exc, inj = _run(EP2, [{"fault": "link_delay",
                                 "delay_ns": 5_000_000}])
    assert exc is None
    assert slow > clean
    assert all(e["fault"] == "link_delay" for e in inj.events)


def test_link_corrupt_raises_typed_error():
    _, exc, _ = _run(EP2, [{"fault": "link_corrupt", "p": 1.0}])
    assert exc is not None
    assert any("MpiCorruptionError" in v for v in exc.failed.values())


def test_link_drop_everything_aborts_via_timeout_not_deadlock():
    t0 = time.monotonic()
    _, exc, _ = _run(EP2, [{"fault": "link_drop", "p": 1.0}])
    assert time.monotonic() - t0 < 30.0
    assert exc is not None


def test_link_dup_is_harmless_to_point_to_point():
    # Receivers match one message per recv; a duplicate is ignored by
    # construction of the mailbox protocol and must not corrupt results.
    elapsed, exc, inj = _run(EP2, [{"fault": "link_dup", "p": 1.0}])
    assert exc is None
    assert elapsed is not None
    assert any(e["fault"] == "link_dup" for e in inj.events)


def test_cpu_degrade_slows_elapsed():
    clean, _, _ = _run(EP2, [])
    slow, exc, _ = _run(EP2, [{"fault": "cpu_degrade", "node": 0, "cpu": 0,
                               "at_s": 0.1, "factor": 0.25}])
    assert exc is None
    assert slow > clean * 1.5


def test_clock_skew_shifts_reported_time_only_slightly():
    clean, _, _ = _run(EP2, [])
    skewed, exc, _ = _run(EP2, [{"fault": "clock_skew", "node": 0,
                                 "at_s": 0.1, "skew_ppm": 500}])
    assert exc is None
    assert skewed != clean
    assert abs(skewed - clean) / clean < 0.01


def test_empty_injector_is_bitwise_no_op():
    """Zero-overhead contract: attaching an injector with no rules must
    not change the simulated result at all."""
    clean = run_nas_config(EP2, smm=2, seed=3)
    faulted = run_nas_config(EP2, smm=2, seed=3,
                             faults=FaultInjector([], seed=3))
    assert faulted == clean


def test_unmatched_node_index_is_skipped():
    # Rule targets node 7 of a 2-node cluster: nothing to arm, clean run.
    elapsed, exc, inj = _run(EP2, [{"fault": "node_crash", "node": 7,
                                    "at_s": 0.5}])
    assert exc is None and elapsed is not None
    assert inj.events == []
    assert not inj.fatal


def test_send_to_failed_rank_raises_immediately():
    """ULFM semantics: once a peer's death is known, a send to it errors
    out at once — no message buffering, no timeout wait."""
    from repro.mpi.cluster import Cluster, ClusterSpec, run_mpi_job
    from repro.mpi.network import NetworkSpec

    cluster = Cluster(ClusterSpec(n_nodes=2, network=NetworkSpec()), seed=1)
    FaultInjector([], seed=1).attach(cluster)
    outcome = []

    def app(rank):
        yield from rank.task.sleep(0)
        if rank.rank == 1:
            raise RuntimeError("rank 1 dies at t=0")
        yield from rank.task.sleep(1_000_000)  # let the death be detected
        try:
            yield from rank.send(1, 64)
        except RankFailedError as err:
            outcome.append((err.rank, rank.task.now_ns()))
            raise
        return None

    with pytest.raises(JobAbortedError) as info:
        run_mpi_job(cluster, app, nranks=2, ranks_per_node=1, name="ulfm")
    assert outcome and outcome[0][0] == 1
    # Raised promptly after the sleep, not after any timeout machinery.
    assert outcome[0][1] < 10_000_000
    assert set(info.value.failed) == {0, 1}
