"""Fault-plan vocabulary: validation, matching, (de)serialization."""

import json

import pytest

from repro.faults import LINK_FAULTS, NODE_FAULTS, PLAN_ENV, FaultPlan, FaultRule


def test_every_kind_round_trips():
    for kind in NODE_FAULTS + LINK_FAULTS:
        rule = FaultRule(fault=kind, match="BT.*")
        back = FaultRule.from_record(rule.to_record())
        assert back.fault == kind
        assert back.match == "BT.*"
        assert back.is_link == (kind in LINK_FAULTS)


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault"):
        FaultRule(fault="meteor_strike")


@pytest.mark.parametrize("kwargs", [
    {"at_s": -1.0},
    {"p": 1.5},
    {"p": -0.1},
    {"factor": 0.0},
    {"factor": 1.5},
    {"delay_ns": -1},
    {"mpi_timeout_s": 0},
])
def test_bad_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultRule(fault="node_crash", **kwargs)


def test_glob_matching_scopes_rules_to_cells():
    plan = FaultPlan([
        FaultRule(fault="node_crash", match="BT.A n=4 *"),
        FaultRule(fault="link_delay", match="BT.*"),
        FaultRule(fault="node_hang", match="FT.*"),
    ])
    assert [r.fault for r in plan.rules_for("BT.A n=4 rpn=1 smm=2")] == \
        ["node_crash", "link_delay"]
    assert [r.fault for r in plan.rules_for("BT.A n=8 rpn=1 smm=0")] == \
        ["link_delay"]
    assert plan.rules_for("EP.A n=4 rpn=1 smm=0") == []


def test_load_write_round_trip(tmp_path):
    plan = FaultPlan([
        FaultRule(fault="node_crash", match="*", node=1, at_s=2.0),
        FaultRule(fault="link_drop", p=0.25, src=0, dst=3),
    ])
    path = tmp_path / "plan.json"
    plan.write(str(path))
    back = FaultPlan.load(str(path))
    assert [r.to_record() for r in back.rules] == \
        [r.to_record() for r in plan.rules]


def test_load_rejects_non_list(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"fault": "node_crash"}))
    with pytest.raises(ValueError, match="JSON list"):
        FaultPlan.load(str(path))


def test_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    assert FaultPlan.from_env() is None
    path = tmp_path / "plan.json"
    FaultPlan([FaultRule(fault="clock_skew")]).write(str(path))
    monkeypatch.setenv(PLAN_ENV, str(path))
    plan = FaultPlan.from_env()
    assert plan is not None and plan.rules[0].fault == "clock_skew"


def test_link_record_omits_node_fields():
    rec = FaultRule(fault="link_drop", p=0.5).to_record()
    assert "node" not in rec and "at_s" not in rec
    rec = FaultRule(fault="node_crash").to_record()
    assert "p" not in rec and "delay_ns" not in rec
