"""Machine-layer fault semantics: fail/hang state machine, CPU
degradation, clock skew, and their interaction with the SMM engine."""

import pytest

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.simx.errors import NodeFailedError
from repro.system import make_machine

REG = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)


def _spawn_worker(m, log):
    def body(task):
        yield from task.compute(1e12)  # effectively forever
        log.append("done")

    task = m.scheduler.spawn(body, "w0", REG)
    # Join the done event so an injected failure is not an orphan.
    task.proc.done_event.add_callback(lambda ev: log.append(
        "failed" if not ev.ok else "ok"))
    return task


def test_fail_aborts_hosted_tasks_with_node_failed_error():
    m = make_machine(WYEAST_SPEC)
    log = []
    task = _spawn_worker(m, log)
    m.engine.schedule(1_000_000, m.node.fail, "test crash")
    m.engine.run()
    assert log == ["failed"]
    assert isinstance(task.proc.done_event.exception, NodeFailedError)
    assert m.node.failed and m.node.dead and not m.node.hung


def test_failed_node_drops_wakeups_and_cannot_thaw():
    m = make_machine(WYEAST_SPEC)
    m.node.fail("gone")
    seen = []
    m.node.deliver(lambda: seen.append(1))
    m.node.unfreeze()  # must not resurrect the node
    m.engine.run()
    assert seen == []
    assert m.node.failed


def test_hang_freezes_forever_and_smm_exit_cannot_thaw():
    m = make_machine(WYEAST_SPEC)
    log = []
    _spawn_worker(m, log)
    # An SMI in flight when the hang lands: its exit must not unfreeze.
    m.engine.schedule(500_000, m.node.smm.trigger, 1_000_000)
    m.engine.schedule(1_000_000, m.node.hang, "stuck SMI")
    m.engine.run()
    assert log == []  # task neither finished nor failed: it is frozen
    assert m.node.hung and m.node.dead and m.node.frozen


def test_dead_node_rejects_new_smis():
    m = make_machine(WYEAST_SPEC)
    m.node.hang()
    assert m.node.smm.trigger(1_000_000) is False
    m2 = make_machine(WYEAST_SPEC)
    m2.node.fail()
    assert m2.node.smm.trigger(1_000_000) is False


def test_fail_and_hang_are_idempotent_and_sticky():
    m = make_machine(WYEAST_SPEC)
    m.node.hang()
    m.node.hang()
    assert m.node.hung
    m.node.fail()  # fail after hang upgrades to failed
    m.node.fail()
    assert m.node.failed


def test_degrade_scales_cpu_rate():
    m = make_machine(WYEAST_SPEC)
    cpu = m.node.cpus[0]
    base = cpu.gross_hz()
    cpu.degrade(0.25)
    assert cpu.gross_hz() == pytest.approx(base * 0.25)


def test_degrade_factor_validated():
    m = make_machine(WYEAST_SPEC)
    for bad in (0.0, -1.0, 1.5):
        with pytest.raises(ValueError):
            m.node.cpus[0].degrade(bad)


def test_degraded_cpu_slows_compute():
    def elapsed(factor):
        m = make_machine(WYEAST_SPEC)
        if factor is not None:
            m.node.cpus[0].degrade(factor)
        done = []

        def body(task):
            yield from task.compute(1e8)
            done.append(task.now_ns())

        m.scheduler.spawn(body, "w0", REG)
        m.engine.run()
        return done[0]

    assert elapsed(0.5) == pytest.approx(2 * elapsed(None), rel=1e-6)


def test_clock_skew_drifts_monotonic_and_tsc():
    m = make_machine(WYEAST_SPEC)
    clock = m.node.clock
    m.engine.schedule(1_000_000_000, lambda: None)
    m.engine.run()
    unskewed = clock.monotonic_ns()
    clock.set_skew(1000.0)  # +1000 ppm
    assert clock.monotonic_ns() == unskewed  # drift starts accruing now
    m.engine.schedule_at(2_000_000_000, lambda: None)
    m.engine.run()
    drifted = clock.monotonic_ns()
    expected_extra = int(1_000_000_000 * 1000e-6)
    assert drifted - unskewed == 1_000_000_000 + expected_extra
    # TSC is derived from the same skewed time base.
    assert clock.rdtsc() == int(drifted * clock.tsc_hz / 1e9)


def test_clock_skew_zero_is_identity():
    a = make_machine(WYEAST_SPEC)
    b = make_machine(WYEAST_SPEC)
    for m in (a, b):
        m.engine.schedule(123_456_789, lambda: None)
        m.engine.run()
    b.node.clock.set_skew(0.0)
    assert a.node.clock.monotonic_ns() == b.node.clock.monotonic_ns()
    assert a.node.clock.rdtsc() == b.node.clock.rdtsc()
