"""UnixBench: index math, test calibration, protocol, noise response."""

import math

import pytest

from repro.apps.unixbench import BASELINES, UB_TESTS, geometric_index, run_unixbench
from repro.apps.unixbench.index import IndexResult, TestScore
from repro.core.smi import SmiProfile


def test_baseline_table_complete():
    assert set(BASELINES) == {
        "dhrystone", "whetstone", "pipe_throughput",
        "context_switching", "syscall_overhead",
    }
    assert BASELINES["dhrystone"] == 116_700.0  # george's classic value


def test_score_is_ten_times_ratio():
    s = TestScore("dhrystone", raw=233_400.0, baseline=116_700.0)
    assert s.score == pytest.approx(20.0)


def test_geometric_index():
    assert geometric_index([10.0, 10.0, 10.0]) == pytest.approx(10.0)
    assert geometric_index([1.0, 100.0]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        geometric_index([])
    with pytest.raises(ValueError):
        geometric_index([1.0, 0.0])


def test_index_result_geomean_of_tests():
    r = IndexResult(copies=1, tests=[
        TestScore("a", 20.0, 10.0), TestScore("b", 80.0, 10.0),
    ])
    assert r.index == pytest.approx(math.sqrt(20.0 * 80.0))


def test_suite_has_papers_five_tests_in_order():
    assert [t.name for t in UB_TESTS] == [
        "dhrystone", "whetstone", "pipe_throughput",
        "context_switching", "syscall_overhead",
    ]
    assert [t.kind for t in UB_TESTS].count("pingpong") == 1


def test_whetstone_is_htt_neutral_dhrystone_is_not():
    by = {t.name: t for t in UB_TESTS}
    assert by["whetstone"].profile.htt_yield == 1.0
    assert by["dhrystone"].profile.htt_yield > 1.2


def test_calibrated_solo_rates_in_nehalem_range():
    by = {t.name: t.solo_ops_per_s() for t in UB_TESTS}
    assert 5e6 < by["dhrystone"] < 1e8
    assert 500 < by["whetstone"] < 10_000           # MWIPS
    assert 1e5 < by["context_switching"] < 2e6      # switches/s


def test_run_returns_both_duplex_levels():
    r = run_unixbench(2, seed=1, duration_s=0.5)
    assert r.single.copies == 1
    assert r.percpu.copies == 2
    assert r.total_index == r.percpu.index
    assert len(r.single.tests) == 5


def test_index_scales_with_cpus():
    i1 = run_unixbench(1, seed=1, duration_s=0.5).total_index
    i4 = run_unixbench(4, seed=1, duration_s=0.5).total_index
    assert 3.0 < i4 / i1 < 4.5


def test_htt_gain_visible_in_suite():
    """Figure 2: 'The benchmark shows performance gains from HTT'."""
    i4 = run_unixbench(4, seed=1, duration_s=0.5).total_index
    i8 = run_unixbench(8, seed=1, duration_s=0.5).total_index
    assert 1.05 < i8 / i4 < 1.6


def test_long_smi_depresses_index_monotonically_in_frequency():
    base = run_unixbench(4, seed=1, duration_s=0.5).total_index
    fast = run_unixbench(4, SmiProfile.LONG, 100, seed=1, duration_s=0.5).total_index
    slow = run_unixbench(4, SmiProfile.LONG, 1600, seed=1, duration_s=0.5).total_index
    assert fast < slow < base


def test_short_smi_no_noticeable_effect():
    """§IV.C: short SMIs showed no change in the performance score.

    At the paper's standard 1 s interval the short-SMI duty cycle is
    ~0.2 % — statistically invisible.  (At the most aggressive 100 ms
    interval the duty is ~2 %, the measurable ceiling of 'no change'.)
    """
    base = run_unixbench(4, seed=1, duration_s=0.5).total_index
    short = run_unixbench(4, SmiProfile.SHORT, 1000, seed=1, duration_s=0.5).total_index
    assert abs(short - base) / base < 0.01
    short_fast = run_unixbench(4, SmiProfile.SHORT, 100, seed=1, duration_s=0.5).total_index
    assert abs(short_fast - base) / base < 0.04


def test_single_copy_unaffected_by_extra_cpus():
    s1 = run_unixbench(1, seed=1, duration_s=0.5).single.index
    s8 = run_unixbench(8, seed=1, duration_s=0.5).single.index
    assert s8 == pytest.approx(s1, rel=0.1)
