"""NPB parameters, structural invariants, calibration integrity."""

import pytest

from repro.apps.nas.params import (
    BT_PARAMS,
    EP_PARAMS,
    FT_PARAMS,
    NAS_EP_PROFILE,
    NasClass,
    PAPER_BASE_1RANK_S,
)
from repro.apps.nas.verification import structural_invariants
from repro.core.calibration import derive_work_units


def test_structural_invariants_all_hold():
    checks = structural_invariants()
    assert all(checks.values()), {k: v for k, v in checks.items() if not v}


def test_ep_pair_counts():
    assert EP_PARAMS[NasClass.A].pairs == 1 << 28
    assert EP_PARAMS[NasClass.C].pairs == 1 << 32
    assert EP_PARAMS[NasClass.A].ops_per_pair > 0


def test_bt_message_size_shrinks_with_ranks():
    p = BT_PARAMS[NasClass.A]
    assert p.msg_bytes(16) == p.msg_bytes(4) // 2  # ∝ 1/√p
    assert p.msg_bytes(1) == 5 * 8 * 64 * 64


def test_ft_geometry_and_bytes():
    p = FT_PARAMS[NasClass.A]
    assert p.cells == 2**23
    assert p.total_bytes == 2**23 * 16
    assert p.per_pair_bytes(4) == p.total_bytes // 16


def test_ft_c_min_ranks_reproduces_blank_cells():
    assert FT_PARAMS[NasClass.C].min_ranks == 4
    assert FT_PARAMS[NasClass.A].min_ranks == 1


def test_calibration_rederivation_matches_stored_constants():
    """params.py's work constants must equal paper_time × solo_rate."""
    for row in derive_work_units():
        assert row.relative_error < 1e-9, row


def test_work_ratios_follow_paper_base_times():
    for bench, params in (("EP", EP_PARAMS), ("BT", BT_PARAMS), ("FT", FT_PARAMS)):
        base = PAPER_BASE_1RANK_S[bench]
        ratio_work = params[NasClass.B].work_total / params[NasClass.A].work_total
        ratio_time = base[NasClass.B] / base[NasClass.A]
        assert ratio_work == pytest.approx(ratio_time, rel=1e-9)


def test_ep_profile_is_htt_neutral():
    """FP-dense NAS kernels gain nothing from HTT (Leng et al. [4])."""
    assert NAS_EP_PROFILE.htt_yield == 1.0
