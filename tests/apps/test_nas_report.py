"""NPB-style report rendering."""

from repro.apps.nas.ep import make_ep_app
from repro.apps.nas.params import EP_PARAMS, NasClass
from repro.apps.nas.report import npb_report
from repro.apps.nas.params import NAS_EP_PROFILE
from repro.mpi import Cluster, ClusterSpec, run_mpi_job


def test_npb_report_block():
    c = Cluster(ClusterSpec(n_nodes=4))
    res = run_mpi_job(c, make_ep_app(NasClass.A), nranks=4,
                      ranks_per_node=1, profile=NAS_EP_PROFILE)
    text = npb_report("EP", NasClass.A, res)
    assert "EP Benchmark Completed" in text
    assert "Class           =            A" in text
    assert "2^28 random pairs" in text
    assert "Verification    =            SUCCESSFUL" in text
    assert "Mop/s total" in text
    # MOPs consistency: ops/time
    total_ops = sum(r["work_ops"] for r in res.rank_results)
    mops = total_ops / res.elapsed_s / 1e6
    assert f"{mops:.2f}" in text


def test_npb_report_flags_failure():
    from repro.mpi.cluster import JobResult

    fake = JobResult(
        nranks=2, ranks_per_node=1,
        rank_results=[{"verified": False, "work_ops": 10.0, "elapsed_s": 1.0},
                      {"verified": True, "work_ops": 10.0, "elapsed_s": 1.0}],
        wall_s=1.0, elapsed_s=1.0,
    )
    assert "UNSUCCESSFUL" in npb_report("EP", NasClass.A, fake)
