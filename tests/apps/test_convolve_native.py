"""The real NumPy convolution: numerical ground truth."""

import numpy as np
import pytest

from repro.apps.convolve_native import (
    convolve2d,
    convolve2d_blocked,
    run_native_convolve,
)


def brute_force(image, kernel):
    km, kn = kernel.shape
    ry, rx = km // 2, kn // 2
    h, w = image.shape
    out = np.zeros_like(image, dtype=float)
    for i in range(h):
        for j in range(w):
            acc = 0.0
            for dy in range(km):
                for dx in range(kn):
                    y, x = i + dy - ry, j + dx - rx
                    if 0 <= y < h and 0 <= x < w:
                        acc += kernel[dy, dx] * image[y, x]
            out[i, j] = acc
    return out


def test_convolve2d_matches_brute_force():
    rng = np.random.default_rng(0)
    image = rng.random((12, 9))
    kernel = rng.random((3, 5))
    np.testing.assert_allclose(convolve2d(image, kernel), brute_force(image, kernel),
                               rtol=1e-12)


def test_identity_kernel_is_identity():
    rng = np.random.default_rng(1)
    image = rng.random((16, 16))
    kernel = np.zeros((3, 3))
    kernel[1, 1] = 1.0
    np.testing.assert_allclose(convolve2d(image, kernel), image)


def test_even_kernel_rejected():
    with pytest.raises(ValueError):
        convolve2d(np.ones((4, 4)), np.ones((2, 3)))


def test_non_2d_rejected():
    with pytest.raises(ValueError):
        convolve2d(np.ones(4), np.ones((3, 3)))


def test_blocked_equals_unblocked():
    """The paper's parallel decomposition must be numerically identical
    to the serial kernel (no data dependencies, §IV.B)."""
    rng = np.random.default_rng(2)
    image = rng.random((70, 55))
    kernel = rng.random((5, 5))
    serial = convolve2d(image, kernel)
    for block, threads in ((16, 4), (32, 2), (128, 8)):
        parallel = convolve2d_blocked(image, kernel, block=block, max_threads=threads)
        np.testing.assert_allclose(parallel, serial, rtol=1e-12)


def test_run_native_convolve_reports():
    r = run_native_convolve(image_side=64, kernel_side=3, block=32, max_threads=2)
    assert r.elapsed_s > 0
    assert r.madds == 64 * 64 * 9
    assert r.mops > 0
    assert np.isfinite(r.checksum)


def test_run_native_deterministic_given_seed():
    a = run_native_convolve(image_side=32, kernel_side=3, seed=5)
    b = run_native_convolve(image_side=32, kernel_side=3, seed=5)
    assert a.checksum == b.checksum
