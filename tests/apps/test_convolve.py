"""Convolve simulator workload: configs, scaling, SMI regimes."""

import pytest

from repro.apps.convolve import (
    CACHE_FRIENDLY,
    CACHE_UNFRIENDLY,
    ConvolveConfig,
    run_convolve,
)
from repro.core.smi import SmiProfile
from repro.machine.profile import WorkloadProfile


def test_paper_configurations():
    """§IV.B's table: image/subimage/kernel sizes."""
    assert CACHE_FRIENDLY.image_pixels == 500_000       # 0.5 MP
    assert CACHE_FRIENDLY.subimage_pixels == 16         # 4×4
    assert CACHE_FRIENDLY.kernel_side == 61
    assert CACHE_UNFRIENDLY.image_pixels == 16_000_000  # 16 MP
    assert CACHE_UNFRIENDLY.subimage_pixels == 1_000_000
    assert CACHE_UNFRIENDLY.kernel_side == 3


def test_madds_math():
    assert CACHE_FRIENDLY.madds_per_pass == 500_000 * 61 * 61
    assert CACHE_UNFRIENDLY.madds_per_pass == 16_000_000 * 9
    assert CACHE_FRIENDLY.blocks == 500_000 // 16
    assert CACHE_UNFRIENDLY.blocks == 16


def test_cf_pays_spawn_overhead_share():
    """CF spawns 31 250 tiny blocks per pass — spawn cost must be a
    visible part of its total (the paper times thread spawning)."""
    spawn_part = (
        CACHE_FRIENDLY.total_work
        - CACHE_FRIENDLY.repetitions * CACHE_FRIENDLY.madds_per_pass
    )
    assert spawn_part / CACHE_FRIENDLY.total_work > 0.2


def test_scaling_one_to_four_cpus_near_linear():
    t1 = run_convolve(CACHE_UNFRIENDLY, 1, seed=1).elapsed_s
    t4 = run_convolve(CACHE_UNFRIENDLY, 4, seed=1).elapsed_s
    assert 3.0 < t1 / t4 < 5.0


def test_htt_benefit_minimal_for_both_configs():
    """§IV.B: CU 'did not benefit greatly from HTT'; CF 'shows minimal
    benefits from HTT'."""
    for cfg in (CACHE_FRIENDLY, CACHE_UNFRIENDLY):
        t4 = run_convolve(cfg, 4, seed=1).elapsed_s
        t8 = run_convolve(cfg, 8, seed=1).elapsed_s
        assert t8 <= t4 * 1.02          # not slower
        assert t8 > t4 * 0.80           # far from 2× speedup


def test_long_smi_50ms_interval_dramatic():
    base = run_convolve(CACHE_FRIENDLY, 4, seed=1).elapsed_s
    noisy = run_convolve(
        CACHE_FRIENDLY, 4, smi_durations=SmiProfile.LONG,
        smi_interval_jiffies=50, seed=1,
    ).elapsed_s
    assert noisy / base > 2.5  # the figure's blow-up regime


def test_long_smi_1500ms_interval_minimal():
    base = run_convolve(CACHE_FRIENDLY, 4, seed=1).elapsed_s
    noisy = run_convolve(
        CACHE_FRIENDLY, 4, smi_durations=SmiProfile.LONG,
        smi_interval_jiffies=1500, seed=1,
    ).elapsed_s
    assert (noisy - base) / base < 0.12


def test_impact_monotone_in_frequency():
    times = [
        run_convolve(
            CACHE_FRIENDLY, 4, smi_durations=SmiProfile.LONG,
            smi_interval_jiffies=iv, seed=1,
        ).elapsed_s
        for iv in (100, 400, 800, 1500)
    ]
    assert times == sorted(times, reverse=True)


def test_short_smi_invisible():
    base = run_convolve(CACHE_FRIENDLY, 4, seed=1).elapsed_s
    noisy = run_convolve(
        CACHE_FRIENDLY, 4, smi_durations=SmiProfile.SHORT,
        smi_interval_jiffies=1000, seed=1,
    ).elapsed_s
    assert abs(noisy - base) / base < 0.01


def test_result_metadata():
    r = run_convolve(CACHE_UNFRIENDLY, 2, smi_durations=SmiProfile.LONG,
                     smi_interval_jiffies=500, seed=1)
    assert r.extra["logical_cpus"] == 2
    assert r.extra["threads"] == 24
    assert r.extra["smm_entries"] > 0
    assert r.mops > 0


def test_custom_config_validation_and_work():
    cfg = ConvolveConfig(
        name="tiny", image_pixels=1000, subimage_pixels=100, kernel_side=3,
        profile=WorkloadProfile(name="p"), repetitions=1,
    )
    assert cfg.blocks == 10
    assert cfg.total_work > cfg.madds_per_pass
