"""The NAS application models: correctness, base-time fidelity, scaling."""

import pytest

from repro.apps.nas.bt import bt_valid_ranks
from repro.apps.nas.ft import ft_feasible
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, nas_config_feasible, run_nas_config
from repro.paperdata import paper_cell


def test_ep_single_rank_base_matches_paper_exactly():
    t = run_nas_config(NasConfig("EP", NasClass.A, 1, 1), smm=0, seed=1)
    assert t == pytest.approx(23.12, rel=0.005)


def test_bt_single_rank_base_matches_paper_exactly():
    t = run_nas_config(NasConfig("BT", NasClass.A, 1, 1), smm=0, seed=1)
    assert t == pytest.approx(86.87, rel=0.005)


def test_ft_single_rank_base_matches_paper_exactly():
    t = run_nas_config(NasConfig("FT", NasClass.A, 1, 1), smm=0, seed=1)
    assert t == pytest.approx(7.64, rel=0.01)


def test_ep_scales_linearly():
    t1 = run_nas_config(NasConfig("EP", NasClass.A, 1, 1), smm=0, seed=1)
    t4 = run_nas_config(NasConfig("EP", NasClass.A, 4, 1), smm=0, seed=1)
    assert t4 == pytest.approx(t1 / 4, rel=0.05)


def test_ep_4_per_node_matches_4_nodes():
    """1 node × 4 ranks ≈ 4 nodes × 1 rank for EP (no comm, no cache war)."""
    a = run_nas_config(NasConfig("EP", NasClass.A, 1, 4), smm=0, seed=1)
    b = run_nas_config(NasConfig("EP", NasClass.A, 4, 1), smm=0, seed=1)
    assert a == pytest.approx(b, rel=0.05)


def test_bt_requires_square_ranks():
    assert bt_valid_ranks(1) and bt_valid_ranks(4) and bt_valid_ranks(64)
    assert not bt_valid_ranks(2) and not bt_valid_ranks(8)
    assert not nas_config_feasible(NasConfig("BT", NasClass.A, 2, 1))
    assert run_nas_config(NasConfig("BT", NasClass.A, 2, 1), smm=0) is None


def test_ft_c_small_rank_counts_infeasible():
    """Table 3's '-' cells."""
    assert not ft_feasible(NasClass.C, 1)
    assert not ft_feasible(NasClass.C, 2)
    assert ft_feasible(NasClass.C, 4)
    assert run_nas_config(NasConfig("FT", NasClass.C, 1, 1), smm=0) is None
    assert run_nas_config(NasConfig("FT", NasClass.C, 2, 1), smm=0) is None


def test_short_smi_negligible_long_smi_visible():
    cfg = NasConfig("EP", NasClass.A, 1, 1)
    base = run_nas_config(cfg, smm=0, seed=2)
    short = run_nas_config(cfg, smm=1, seed=2)
    long = run_nas_config(cfg, smm=2, seed=2)
    assert abs(short - base) / base < 0.01          # paper: ±0.3 %
    assert 0.08 < (long - base) / base < 0.16       # paper: ~11 %


def test_long_smi_pct_grows_with_nodes_for_ep():
    """The paper's central scaling observation (Table 2)."""

    def pct(nodes):
        cfg = NasConfig("EP", NasClass.A, nodes, 1)
        b = run_nas_config(cfg, smm=0, seed=3)
        l = run_nas_config(cfg, smm=2, seed=3)
        return (l - b) / b

    p1, p16 = pct(1), pct(16)
    assert p16 > p1 * 1.15


def test_bt_amplifies_more_than_ep_at_scale():
    """Synchronization amplifies noise: BT ≫ EP at 16 nodes (Table 1 vs 2)."""

    def pct(bench):
        cfg = NasConfig(bench, NasClass.A, 16, 1)
        b = run_nas_config(cfg, smm=0, seed=3)
        l = run_nas_config(cfg, smm=2, seed=3)
        return (l - b) / b

    assert pct("BT") > 2 * pct("EP")


def test_verification_values_flow_through_collectives():
    """A failed checksum raises — prove it runs by not raising, for every
    benchmark at a multi-rank configuration."""
    assert run_nas_config(NasConfig("EP", NasClass.A, 4, 1), smm=0, seed=1) > 0
    assert run_nas_config(NasConfig("BT", NasClass.A, 4, 1), smm=0, seed=1) > 0
    assert run_nas_config(NasConfig("FT", NasClass.A, 4, 1), smm=0, seed=1) > 0


def test_paper_cell_lookup():
    assert paper_cell("EP", 1, NasClass.A, 1) == (23.12, 23.18, 25.66)
    assert paper_cell("FT", 1, NasClass.C, 1) is None  # blank cell
    assert paper_cell("BT", 4, NasClass.C, 16)[2] == 535.67


def test_determinism_same_seed():
    cfg = NasConfig("FT", NasClass.A, 4, 1)
    a = run_nas_config(cfg, smm=2, seed=9)
    b = run_nas_config(cfg, smm=2, seed=9)
    assert a == b
    c = run_nas_config(cfg, smm=2, seed=10)
    assert a != c
