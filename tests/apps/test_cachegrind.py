"""The cachegrind-style simulator and the CF/CU regime contrast."""

import pytest

from repro.apps.cachegrind import (
    CacheSim,
    CacheStack,
    convolve_address_stream,
    convolve_miss_rate,
)


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheSim(size_bytes=1000, ways=8, line_bytes=64)


def test_hit_after_miss_same_line():
    c = CacheSim(4 << 10, 2, 64)
    assert not c.access(0x1000)   # compulsory miss
    assert c.access(0x1000)       # hit
    assert c.access(0x1030)       # same 64 B line
    assert c.stats.references == 3
    assert c.stats.misses == 1


def test_lru_eviction_order():
    # direct-mapped-ish: 2 ways, hammer 3 conflicting lines
    c = CacheSim(2 * 64, 2, 64)   # one set, two ways
    a, b, d = 0x0, 0x40, 0x80
    c.access(a)
    c.access(b)
    c.access(d)                    # evicts a (LRU)
    assert not c.access(a)         # a gone
    assert c.access(d)             # d resident


def test_associativity_prevents_conflict_misses():
    addrs = [i * 4 << 10 for i in range(4)]  # same set in a small cache
    direct = CacheSim(4 << 10, 1, 64)
    assoc = CacheSim(4 << 10, 8, 64)
    for _ in range(3):
        for a in addrs:
            direct.access(a)
            assoc.access(a)
    assert assoc.stats.misses == 4            # compulsory only
    assert direct.stats.misses > assoc.stats.misses


def test_address_stream_shape():
    """Per output pixel: k² image reads + k² kernel reads + 1 store."""
    stream = list(convolve_address_stream(4, 4, 3, block=2))
    assert len(stream) == 4 * 4 * (9 + 9 + 1)
    # stores target the output region
    stores = stream[18::19]
    assert all(a >= 0x80_0000 for a in stores)


def test_cf_regime_low_memory_traffic():
    """CF-like: small image + big resident kernel ⇒ almost no traffic
    escapes the cache hierarchy (the paper's ≈1 % configuration)."""
    cf = convolve_miss_rate(
        image_w=64, image_h=64, kernel_side=15, block=4,
        stack=CacheStack(CacheSim(16 << 10, 8, 64), CacheSim(256 << 10, 16, 64)),
    )
    dram_per_ref = cf.d1.stats.miss_rate * cf.ll.stats.miss_rate
    assert cf.d1.stats.miss_rate < 0.01
    assert dram_per_ref < 0.002


def test_cu_regime_heavy_memory_traffic():
    """CU-like: streaming image ≫ LL with a 3×3 kernel ⇒ the LL misses on
    essentially all its traffic (the paper's ≈70 % regime — cachegrind's
    LL summary), and DRAM traffic per reference is ≳10× the CF case."""
    cu = convolve_miss_rate(
        image_w=2048, image_h=64, kernel_side=3, block=64,
        stack=CacheStack(CacheSim(4 << 10, 8, 64), CacheSim(32 << 10, 16, 64)),
    )
    cf = convolve_miss_rate(
        image_w=64, image_h=64, kernel_side=15, block=4,
        stack=CacheStack(CacheSim(16 << 10, 8, 64), CacheSim(256 << 10, 16, 64)),
    )
    assert cu.ll.stats.miss_rate > 0.6        # the high-miss regime
    cu_dram = cu.d1.stats.miss_rate * cu.ll.stats.miss_rate
    cf_dram = cf.d1.stats.miss_rate * cf.ll.stats.miss_rate
    assert cu_dram > 10 * cf_dram


def test_profiles_ordering_matches_simulated_contrast():
    """The fluid-model profile constants must order the same way the
    cache simulation does: CU ≫ CF in DRAM miss rate."""
    from repro.apps.convolve import CACHE_FRIENDLY, CACHE_UNFRIENDLY

    assert (
        CACHE_UNFRIENDLY.profile.base_miss_rate
        > 10 * CACHE_FRIENDLY.profile.base_miss_rate
    )
