"""Host-native UnixBench twins (real machine, short windows)."""

from repro.apps.unixbench.native import native_test_functions, run_native_unixbench


def test_each_native_test_produces_ops():
    for name, fn in native_test_functions().items():
        assert fn() > 0, name


def test_native_run_scores_all_five():
    r = run_native_unixbench(duration_s=0.05)
    assert len(r.tests) == 5
    assert all(t.raw > 0 for t in r.tests)
    assert r.index > 0
