#!/usr/bin/env python3
"""Convolve × HTT × SMI frequency (a slice of Figure 1).

Sweeps the paper's multithreaded methodology: 24 convolution threads on
1–8 online logical CPUs (1–4 = HTT-disabled-like, 5–8 online HTT
siblings), clean and under long SMIs at a 50 ms interval — plus the real
NumPy convolution for numerical ground truth.

Run:  python examples/convolve_htt.py               (~1 minute)
"""

import numpy as np

from repro.apps.convolve import CACHE_FRIENDLY, CACHE_UNFRIENDLY, run_convolve
from repro.apps.convolve_native import convolve2d, convolve2d_blocked
from repro.core.smi import SmiProfile


def sweep(config) -> None:
    print(f"\n{config.name}: 24 threads, long SMIs @50 ms vs clean")
    print(f"{'logical CPUs':>13} {'clean s':>9} {'noisy s':>9} {'slowdown':>9}")
    for cpus in (1, 2, 3, 4, 6, 8):
        clean = run_convolve(config, cpus, seed=5).elapsed_s
        noisy = run_convolve(
            config, cpus, smi_durations=SmiProfile.LONG,
            smi_interval_jiffies=50, seed=5,
        ).elapsed_s
        print(f"{cpus:>13} {clean:>9.2f} {noisy:>9.2f} {noisy / clean:>8.2f}x")


def native_check() -> None:
    rng = np.random.default_rng(0)
    image = rng.random((256, 256))
    kernel = rng.random((9, 9))
    serial = convolve2d(image, kernel)
    threaded = convolve2d_blocked(image, kernel, block=64, max_threads=8)
    err = float(np.abs(serial - threaded).max())
    print(f"\nnative NumPy kernel: blocked-threaded vs serial max |Δ| = {err:.2e}")
    print("(the paper's decomposition has no data dependencies — results identical)")


def main() -> None:
    print("Convolve experiments (§IV.B): note near-linear scaling to 4 CPUs,")
    print("minimal HTT benefit at 5-8, and the dramatic 50 ms-interval regime.")
    sweep(CACHE_FRIENDLY)
    sweep(CACHE_UNFRIENDLY)
    native_check()


if __name__ == "__main__":
    main()
