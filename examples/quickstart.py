#!/usr/bin/env python3
"""Quickstart: inject SMIs into a simulated machine and watch the cost.

Builds one Wyeast-class node, runs a 2-second compute task three times —
clean, under short SMIs (1–3 ms @ 1/s), and under long SMIs
(100–110 ms @ 1/s) — and prints the wall-time cost plus what the kernel
*thinks* the task used (the paper's mis-attribution effect).

Run:  python examples/quickstart.py
"""

from repro import make_machine, SmiProfile, SmiSource
from repro.core.attribution import attribute
from repro.machine.profile import COMPUTE_BOUND
from repro.machine.topology import WYEAST_SPEC


def run_once(smm_label, durations):
    machine = make_machine(WYEAST_SPEC, seed=42)
    if durations is not None:
        SmiSource(machine.node, durations, interval_jiffies=1000, seed=42)

    work = COMPUTE_BOUND.solo_rate(WYEAST_SPEC.base_hz) * 2.0  # exactly 2 s solo

    def body(task):
        yield from task.compute(work)

    task = machine.scheduler.spawn(body, "worker", COMPUTE_BOUND)
    machine.engine.run_until(task.proc.done_event)

    wall = task.finished_ns / 1e9
    rep = attribute(machine.node).tasks[0]
    smis = machine.node.smm.stats.entries
    print(
        f"{smm_label:<22} wall {wall:6.3f} s   SMIs {smis:3d}   "
        f"kernel-utime {rep.kernel_s:6.3f} s   true {rep.true_s:6.3f} s   "
        f"stolen {rep.stolen_s:6.3f} s"
    )
    return wall


def main() -> None:
    print("2 s of computation on a simulated Xeon E5520 node:\n")
    base = run_once("no SMIs (SMM 0)", None)
    short = run_once("short SMIs (SMM 1)", SmiProfile.SHORT)
    long_ = run_once("long SMIs (SMM 2)", SmiProfile.LONG)
    print()
    print(f"short-SMI slowdown: {100 * (short - base) / base:5.2f} %  (paper: ~0 %)")
    print(f"long-SMI slowdown:  {100 * (long_ - base) / base:5.2f} %  (paper: ~11 %)")
    print("\nNote the kernel charges the stolen SMM time to the task —")
    print("a profiler would report the inflated number (§II.A of the paper).")


if __name__ == "__main__":
    main()
