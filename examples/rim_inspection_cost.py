#!/usr/bin/env python3
"""What would SMM-based runtime integrity measurement (RIM) cost?

The paper's motivation (§I): proposals like HyperSentry/SPECTRE run
hypervisor-integrity checks *from SMM*, and "the amount of time needed to
reside in SMM in order to perform security checks can be disruptive".
This example prices that proposal with the model: a RIM profile
(30–40 ms per inspection) swept over inspection frequencies, measured on
the UnixBench index and on an MPI FT job — the two extremes of the
paper's workload space.

Run:  python examples/rim_inspection_cost.py        (~1-2 minutes)
"""

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.apps.unixbench import run_unixbench
from repro.core.smi import SmiProfile


def main() -> None:
    print("RIM-from-SMM cost model: 30-40 ms integrity check per inspection\n")
    ub_base = run_unixbench(8, seed=4, duration_s=1.0).total_index
    ft_cfg = NasConfig("FT", NasClass.A, 4, 1)
    ft_base = run_nas_config(ft_cfg, smm=0, seed=4)

    print(f"{'inspection period':>18} {'duty %':>7} {'UnixBench idx':>14} "
          f"{'Δ%':>6} {'FT.A @4 nodes s':>16} {'Δ%':>6}")
    print(f"{'(baseline)':>18} {'0.0':>7} {ub_base:>14.0f} {'':>6} "
          f"{ft_base:>16.2f}")
    for period_ms in (5000, 2000, 1000, 500, 250):
        duty = 100 * 35 / period_ms
        ub = run_unixbench(
            8, SmiProfile.RIM, period_ms, seed=4, duration_s=1.0
        ).total_index
        ft = run_nas_config(
            ft_cfg, smm=0, seed=4
        )  # base, then re-run with RIM via custom source below
        from repro.core.smi import SmiProfile as SP
        from repro.mpi.cluster import Cluster, ClusterSpec, run_mpi_job
        from repro.apps.nas.study import _APPS

        make_app, profile = _APPS["FT"]
        cluster = Cluster(ClusterSpec(n_nodes=4), seed=4)
        cluster.enable_smi(SP.RIM, period_ms, seed=4)
        ft = run_mpi_job(cluster, make_app(NasClass.A), nranks=4,
                         ranks_per_node=1, profile=profile).elapsed_s
        print(
            f"{period_ms:>15} ms {duty:>7.1f} {ub:>14.0f} "
            f"{100 * (ub - ub_base) / ub_base:>6.1f} {ft:>16.2f} "
            f"{100 * (ft - ft_base) / ft_base:>6.1f}"
        )
    print("\nTakeaway: second-scale inspection periods are nearly free;")
    print("sub-second RIM taxes both throughput and parallel jobs roughly")
    print("at the SMM duty cycle — and the MPI penalty grows with node")
    print("count (run examples/scale_projection.py to see amplification).")


if __name__ == "__main__":
    main()
