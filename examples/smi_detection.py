#!/usr/bin/env python3
"""SMI detection: the Blackbox driver's self-measurement and the
hwlat-style gap scan — simulated and on *this* host.

1. Loads the simulated Blackbox SMI driver (long class, 1/s), reads its
   TSC-measured latency statistics (§III.B's methodology).
2. Runs the spin-gap detector on the same node and shows that every SMI
   appears as a latency gap over the BIOSBITS 150 µs budget.
3. Runs the identical gap-scan algorithm against the real machine's
   ``time.monotonic_ns()`` — on hardware with genuine SMI activity this
   is a usable noise detector (on a busy VM you'll mostly see scheduler
   preemption; the methodology is the point).

Run:  python examples/smi_detection.py
"""

from repro.core.detector import GapDetector, host_gap_scan
from repro.core.driver import BlackboxSmiDriver
from repro.machine.profile import COMPUTE_BOUND
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine


def simulated() -> None:
    machine = make_machine(WYEAST_SPEC, seed=8)
    driver = BlackboxSmiDriver(machine.node)
    driver.configure(smm_class=2, interval_jiffies=1000, seed=8)
    driver.start()

    detector = GapDetector(machine.node)
    det_proc = machine.engine.process(
        detector.run(int(5e9)), name="detector", gate=machine.node
    )

    def victim(task):  # background load, as in a real scan
        yield from task.compute(COMPUTE_BOUND.solo_rate(WYEAST_SPEC.base_hz) * 4.0)

    machine.scheduler.spawn(victim, "load", COMPUTE_BOUND)
    machine.engine.run_until(det_proc.done_event)
    driver.stop()

    stats = driver.read_stats()
    print("simulated node, long SMIs @ 1/s for 5 s:")
    print(f"  driver:   {stats.smi_count} SMIs, TSC-measured latency "
          f"{stats.min_latency_ns / 1e6:.1f}–{stats.max_latency_ns / 1e6:.1f} ms "
          f"(mean {stats.mean_latency_ns / 1e6:.1f} ms)")
    rep = detector.report
    print(f"  detector: {rep.detected} gaps, {rep.biosbits_violations} over the "
          f"BIOSBITS 150 µs budget, max {rep.max_gap_ns() / 1e6:.1f} ms")
    assert rep.detected == stats.smi_count


def on_host() -> None:
    print("\nthis host, 0.5 s spin scan (threshold 150 µs):")
    rep = host_gap_scan(window_s=0.5)
    print(f"  {rep.samples} clock reads, {rep.detected} gaps, "
          f"max {rep.max_gap_ns() / 1e3:.0f} µs")
    for g in rep.gaps[:10]:
        print(f"    at +{g.at_ns / 1e6:9.3f} ms   width {g.width_ns / 1e3:8.1f} µs")
    if not rep.gaps:
        print("    (quiet platform — no gaps over the budget)")


if __name__ == "__main__":
    simulated()
    on_host()
