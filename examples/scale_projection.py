#!/usr/bin/env python3
"""Projecting the study to larger scales (the paper's future work).

§V: "we hope ... to test additional parallel applications at larger
scales."  The simulator has no 16-node limit: this example projects the
long-SMI penalty for EP and BT out to 256 ranks and compares against the
closed-form models of :mod:`repro.core.analytic`.

Run:  python examples/scale_projection.py           (~2-3 minutes)
"""

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.core.analytic import coupled_utilization_bounds, expected_extra_max_of_n


def main() -> None:
    print("long-SMI (100-110 ms @ 1/s) penalty vs scale, class C\n")
    print(f"{'ranks':>6} {'EP %':>7} {'EP analytic %':>14} {'BT %':>7} "
          f"{'BT bound %':>11}")
    for nodes in (1, 4, 16, 64, 256):
        ep_cfg = NasConfig("EP", NasClass.C, nodes, 1)
        ep_b = run_nas_config(ep_cfg, smm=0, seed=6)
        ep_l = run_nas_config(ep_cfg, smm=2, seed=6)
        ep_pct = 100 * (ep_l - ep_b) / ep_b
        ana = 100 * (
            expected_extra_max_of_n(ep_b, 0.105, 1.0, nodes) / ep_b + 0.0
        )
        row = f"{nodes:>6} {ep_pct:>7.1f} {ana:>14.1f}"
        if NasConfig("BT", NasClass.C, nodes, 1).nranks in (1, 4, 16, 64, 256):
            bt_cfg = NasConfig("BT", NasClass.C, nodes, 1)
            bt_b = run_nas_config(bt_cfg, smm=0, seed=6)
            bt_l = run_nas_config(bt_cfg, smm=2, seed=6)
            bt_pct = 100 * (bt_l - bt_b) / bt_b
            lo, _hi = coupled_utilization_bounds(0.105, 1.0, nodes, 0.4)
            bound = 100 * (1 / lo - 1) if lo > 0 else float("inf")
            row += f" {bt_pct:>7.1f} {bound:>11.1f}"
        print(row)
    print("\nEP's penalty saturates (max over independent ranks);")
    print("BT's approaches the coupled union-coverage bound.")


if __name__ == "__main__":
    main()
