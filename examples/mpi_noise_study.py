#!/usr/bin/env python3
"""A miniature Table-2-style MPI noise study.

Runs the EP and FT benchmark models (class A) at 1, 4, and 16 nodes under
the paper's three SMI conditions and prints the Δ/%Δ rows, demonstrating
the paper's central result: long-SMI degradation *grows with scale*, and
faster for communication-heavy codes.

Run:  python examples/mpi_noise_study.py            (~1 minute)
"""

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.paperdata import paper_cell


def main() -> None:
    print(f"{'config':<22} {'SMM0':>8} {'SMM1':>8} {'%':>6} {'SMM2':>8} "
          f"{'%':>6} {'paper %':>8}")
    print("-" * 72)
    for bench in ("EP", "FT"):
        for nodes in (1, 4, 16):
            cfg = NasConfig(bench, NasClass.A, nodes, ranks_per_node=1)
            base = run_nas_config(cfg, smm=0, seed=7)
            short = run_nas_config(cfg, smm=1, seed=7)
            long_ = run_nas_config(cfg, smm=2, seed=7)
            paper = paper_cell(bench, 1, NasClass.A, nodes)
            paper_pct = 100 * (paper[2] - paper[0]) / paper[0]
            print(
                f"{bench}.A @{nodes:>2} nodes      "
                f"{base:>8.2f} {short:>8.2f} {100 * (short - base) / base:>6.2f} "
                f"{long_:>8.2f} {100 * (long_ - base) / base:>6.1f} {paper_pct:>8.1f}"
            )
        print()
    print("Short SMIs are invisible; long-SMI % grows with node count —")
    print("even for EP, whose only synchronization is the final allreduce.")


if __name__ == "__main__":
    main()
