"""Figure 2 — UnixBench index vs SMI interval per CPU configuration.

Shape assertions from §IV.C: the index rises with cores and shows HTT
gains; long SMIs depress it, worst below 600 ms intervals; short SMIs
show no effect; CPU configurations are affected symmetrically (similar
relative loss) while the absolute effect grows with cores.
"""

from repro.harness.common import bench_full
from repro.harness.figure2 import build_figure2, render_figure2


def test_figure2_unixbench(benchmark, save_artifact):
    data = benchmark.pedantic(
        lambda: build_figure2(quick=not bench_full(), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("figure2_unixbench.txt", render_figure2(data))
    save_artifact("figure2_unixbench.csv", render_figure2(data, csv=True))
    base = data.baselines
    # scaling with cores + HTT gain
    assert base[4] > 3.0 * base[1]
    assert 1.05 < base[8] / base[4] < 1.6
    # short SMIs: no noticeable effect anywhere
    for k, v in data.short_at_100ms.items():
        assert abs(v - base[k]) / base[k] < 0.04, k
    rel_loss = {}
    for s in data.long_series:
        k = int(s.label.replace("cpu", ""))
        by_x = dict(s.points)
        # monotone recovery as the interval grows
        xs = sorted(by_x)
        ys = [by_x[x] for x in xs]
        assert all(a <= b * 1.02 for a, b in zip(ys, ys[1:])), k
        # worst at 100 ms: a big hit
        assert by_x[100] / base[k] < 0.75, k
        rel_loss[k] = 1.0 - by_x[600] / base[k]
    # symmetric relative effect across CPU configurations
    assert max(rel_loss.values()) - min(rel_loss.values()) < 0.12
