"""Methodology bench — SMI detectability (hwlat-style gap scan).

§II.C: latency-sensitive users detect SMIs with timing-gap tools; Intel's
BIOSBITS warns over 150 µs.  The bench scans each SMI class and records
detection rate, gap widths, and BIOSBITS verdicts.
"""

from io import StringIO

from repro.core.detector import GapDetector
from repro.core.smi import SmiProfile, SmiSource
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine


def _scan(durations, interval, window_s=2.0):
    m = make_machine(WYEAST_SPEC, seed=21)
    if durations is not None:
        SmiSource(m.node, durations, interval, seed=21)
    det = GapDetector(m.node)
    proc = m.engine.process(det.run(int(window_s * 1e9)), name="det", gate=m.node)
    m.engine.run_until(proc.done_event)
    return det.report, m.node.smm.stats.entries


def test_detector_catches_all_classes(benchmark, save_artifact):
    def measure():
        return {
            "none": _scan(None, 1000),
            "short@1s": _scan(SmiProfile.SHORT, 1000),
            "long@1s": _scan(SmiProfile.LONG, 1000),
            "long@300ms": _scan(SmiProfile.LONG, 300),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    out = StringIO()
    out.write("hwlat-style gap scan, 2 s window, 150 µs (BIOSBITS) threshold\n")
    out.write(f"{'condition':<12} {'SMIs':>5} {'gaps':>5} {'biosbits':>9} {'max gap ms':>11}\n")
    for name, (rep, entries) in results.items():
        out.write(
            f"{name:<12} {entries:>5} {rep.detected:>5} "
            f"{rep.biosbits_violations:>9} {rep.max_gap_ns() / 1e6:>11.3f}\n"
        )
    save_artifact("detector.txt", out.getvalue())
    rep, entries = results["none"]
    assert rep.detected == 0
    for name in ("short@1s", "long@1s", "long@300ms"):
        rep, entries = results[name]
        assert rep.detected == entries  # every SMI caught
        assert rep.biosbits_violations == entries
