"""Methodology bench — the §II/§V mis-attribution claim, quantified.

Not a table in the paper, but its stated motivation for tool developers:
SMM time is charged to whatever was running.  This bench measures kernel
over-report vs ground truth across the SMI classes and saves the record.
"""

from io import StringIO

from repro.core.attribution import attribute
from repro.core.smi import SmiProfile, SmiSource
from repro.machine.profile import COMPUTE_BOUND
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine


def _run(durations, interval):
    m = make_machine(WYEAST_SPEC, seed=11)
    if durations is not None:
        SmiSource(m.node, durations, interval, seed=11)

    def body(task):
        yield from task.compute(COMPUTE_BOUND.solo_rate(WYEAST_SPEC.base_hz) * 2.0)

    t = m.scheduler.spawn(body, "victim", COMPUTE_BOUND)
    m.engine.run_until(t.proc.done_event)
    return attribute(m.node)


def test_attribution_inflation(benchmark, save_artifact):
    def measure():
        return {
            "SMM 0": _run(None, 1000),
            "SMM 1 (1/s)": _run(SmiProfile.SHORT, 1000),
            "SMM 2 (1/s)": _run(SmiProfile.LONG, 1000),
            "SMM 2 (1/300ms)": _run(SmiProfile.LONG, 300),
        }

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    out = StringIO()
    out.write("kernel-reported vs true CPU time for a 2 s compute victim\n")
    out.write(f"{'condition':<18} {'kernel s':>9} {'true s':>8} {'stolen s':>9} {'inflation %':>12}\n")
    for name, rep in reports.items():
        t = rep.tasks[0]
        out.write(
            f"{name:<18} {t.kernel_s:>9.4f} {t.true_s:>8.4f} "
            f"{t.stolen_s:>9.4f} {t.inflation_pct:>12.2f}\n"
        )
        assert rep.conservation_error_s() < 1e-9
    save_artifact("attribution.txt", out.getvalue())
    assert reports["SMM 0"].tasks[0].inflation_pct == 0.0
    assert reports["SMM 1 (1/s)"].tasks[0].inflation_pct < 1.0
    assert 8.0 < reports["SMM 2 (1/s)"].tasks[0].inflation_pct < 16.0
    assert reports["SMM 2 (1/300ms)"].tasks[0].inflation_pct > 25.0
