"""Benchmark-harness fixtures.

Every bench regenerates one of the paper's artifacts (a table or a
figure), prints it next to the paper's published values, and saves it
under ``benchmarks/results/``.  ``REPRO_BENCH_FULL=1`` switches from the
quick matrix (class A, coarse sweeps, 1 rep) to the paper's full matrix;
``REPRO_BENCH_REPS`` overrides repetitions (the paper used 6).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """save_artifact(name, text): persist + echo an artifact."""

    def _save(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text)
        print(f"\n[artifact saved: {path}]\n{text}")

    return _save
