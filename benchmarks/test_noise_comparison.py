"""Methodology bench — SMI noise vs classic OS noise at equal duty.

Quantifies §II.C's taxonomy: timer-tick/daemon noise is schedulable and
partially absorbable; the SMM freeze is neither.  Produces the comparison
record alongside the Ferreira-style single-pulse retention factors.
"""

from io import StringIO

from repro.core.noise import DAEMON, OS_TICK, SMI_LONG_PULSE, NoisePulse, absorption_experiment
from repro.core.osnoise import equal_duty_comparison


def test_noise_taxonomy_comparison(benchmark, save_artifact):
    def measure():
        duty = equal_duty_comparison(
            duty=0.105, n_phases=10, phase_work_s=0.05, seed=7
        )
        task_pulse = NoisePulse("daemon-long", 105_000_000, mechanism="task")
        retention = {
            "os-tick (10 µs, 1 cpu)": absorption_experiment(OS_TICK, 30_000_000),
            "daemon (3 ms, 1 cpu)": absorption_experiment(DAEMON, 30_000_000),
            "daemon (105 ms, 1 cpu)": absorption_experiment(task_pulse, 30_000_000),
            "SMI (105 ms, all cpus)": absorption_experiment(SMI_LONG_PULSE, 30_000_000),
        }
        return duty, retention

    duty, retention = benchmark.pedantic(measure, rounds=1, iterations=1)
    out = StringIO()
    out.write("equal-duty (10.5 %) continuous noise, 2 workers / 4 cores:\n")
    for k in ("clean", "os", "smm"):
        out.write(f"  {k:<6} {duty[k]:8.3f} s"
                  f"   (x{duty[k] / duty['clean']:.3f})\n")
    out.write("\nsingle-pulse retention fraction (Ferreira-style):\n")
    for k, v in retention.items():
        out.write(f"  {k:<24} {v:6.3f}\n")
    save_artifact("noise_comparison.txt", out.getvalue())
    assert duty["smm"] > duty["os"]
    assert retention["SMI (105 ms, all cpus)"] > retention["daemon (105 ms, 1 cpu)"]
    assert retention["SMI (105 ms, all cpus)"] > 0.9
