"""Table 5 — Effect of HTT on FT with 4 MPI ranks per node.

Same protocol as Table 4 on the communication-heavy FT.  The paper's FT
deltas are small and of both signs (−9.6 % … +4.3 %); the bench asserts
the SMM-0/1 neutrality and that long-SMI deltas stay within the paper's
small-effect envelope rather than demanding a sign.
"""

from repro.harness.common import bench_full, bench_reps
from repro.harness.htt_tables import build_htt_table, render_htt


def test_table5_ft_htt(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: build_htt_table(
            "FT", quick=not bench_full(), reps=bench_reps(), seed=1
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("table5_ft_htt.txt", render_htt("FT", rows))
    deltas = []
    for r in rows:
        for smm in (0, 1):
            h0, h1 = r.cells[smm]
            if h0 and h1:
                assert abs(h1 - h0) / h0 < 0.03, (r.cls, r.row, smm)
        h0, h1 = r.cells[2]
        if h0 and h1:
            deltas.append(abs(h1 - h0) / h0)
            # per-row: second-order even in the worst case (sub-second
            # cells see a whole misplacement window at once)
            assert abs(h1 - h0) / h0 < 0.50, (r.cls, r.row)
    # in aggregate the long-SMI HTT delta stays a second-order effect
    assert sum(deltas) / len(deltas) < 0.15
