"""Table 4 — Effect of HTT on EP with 4 MPI ranks per node.

The paper: "our results are affected by HTT in the case of long SMM
intervals.  However, the impact does not follow a clear scaling pattern,
and we do not see a similar impact for the short SMM intervals."  The
bench asserts exactly that: ht0≈ht1 under SMM 0/1, and an aggregate ht=1
penalty under SMM 2.
"""

from repro.harness.common import bench_full, bench_reps
from repro.harness.htt_tables import build_htt_table, render_htt


def test_table4_ep_htt(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: build_htt_table(
            "EP", quick=not bench_full(), reps=bench_reps(), seed=1
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("table4_ep_htt.txt", render_htt("EP", rows))
    for r in rows:
        for smm in (0, 1):
            h0, h1 = r.cells[smm]
            if h0 and h1:
                assert abs(h1 - h0) / h0 < 0.03, (r.cls, r.row, smm)
    # Long SMIs: summed over rows, HTT-on pays extra (no per-row pattern,
    # as the paper observes).
    tot0 = sum(r.cells[2][0] for r in rows if r.cells[2][0])
    tot1 = sum(r.cells[2][1] for r in rows if r.cells[2][1])
    assert tot1 >= tot0
