"""Ablations of the model's fitted design choices (DESIGN.md §5–6).

Each ablation flips one modeling decision and measures the consequence,
documenting *why* the default is what it is:

1. **SMI phase alignment** — clustered (default, 400 ms rollout spread)
   vs fully independent phases vs perfectly aligned, on the tightly
   coupled BT: the amplification factor moves exactly as the union-
   coverage analysis predicts.
2. **Per-node NIC sharing** — 4 ranks/node vs 4 ranks on 4 nodes for the
   alltoall-heavy FT: NIC contention is what makes dense placements
   "poor fits".
3. **HTT misplacement mechanism** — disable the post-SMM wake-up
   perturbation (saturation → ∞) and show the Tables 4–5 HTT deltas
   vanish.
4. **Collective algorithm choice** — allreduce via recursive doubling
   (p = 2^k) vs forced reduce+bcast: latency-bound cost changes measurably.
"""

from io import StringIO

from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.core.analytic import coupled_utilization_bounds


def _bt_pct(phase_spread_ns, seed=3):
    cfg = NasConfig("BT", NasClass.A, 16, 1)
    b = run_nas_config(cfg, smm=0, seed=seed, phase_spread_ns=phase_spread_ns)
    l = run_nas_config(cfg, smm=2, seed=seed, phase_spread_ns=phase_spread_ns)
    return 100.0 * (l - b) / b


def test_ablation_phase_alignment(benchmark, save_artifact):
    def measure():
        return {
            "aligned (spread 1ms)": _bt_pct(1_000_000),
            "clustered (default 400ms)": _bt_pct(400_000_000),
            "independent (uniform)": _bt_pct(None),
        }

    res = benchmark.pedantic(measure, rounds=1, iterations=1)
    out = StringIO()
    out.write("BT.A @16 nodes long-SMI slowdown vs SMI phase alignment\n")
    for k, v in res.items():
        out.write(f"  {k:<28} {v:7.1f} %\n")
    lo, hi = coupled_utilization_bounds(0.105, 1.0, 16, 0.4)
    out.write(f"analytic clustered-phase bounds: {100 * (1 / hi - 1):.1f}–"
              f"{100 * (1 / lo - 1):.1f} %\n")
    save_artifact("ablation_phase_alignment.txt", out.getvalue())
    assert res["aligned (spread 1ms)"] < res["clustered (default 400ms)"]
    assert res["clustered (default 400ms)"] < res["independent (uniform)"]
    # the default lands near the paper's BT-A/16 factor (+96 %)
    assert 30 < res["clustered (default 400ms)"] < 150


def test_ablation_nic_sharing(benchmark, save_artifact):
    def measure():
        dense = run_nas_config(NasConfig("FT", NasClass.A, 1, 4), smm=0, seed=3)
        spread = run_nas_config(NasConfig("FT", NasClass.A, 4, 1), smm=0, seed=3)
        return dense, spread

    dense, spread = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "FT.A with 4 ranks: one node (shared NIC) vs four nodes\n"
        f"  4 ranks / 1 node : {dense:.2f} s\n"
        f"  4 ranks / 4 nodes: {spread:.2f} s\n"
    )
    save_artifact("ablation_nic_sharing.txt", text)
    # dense placement either loses to spread or wins only via intra-node
    # transport; it must not beat spread by much, and the effect exists.
    assert dense != spread


def test_ablation_htt_misplacement(benchmark, save_artifact):
    """Silence the wake-up perturbation ⇒ EP's ht=1 long-SMI penalty dies."""
    from repro.apps.nas.study import _APPS
    from repro.core.smi import SmiProfile
    from repro.mpi.cluster import Cluster, ClusterSpec, run_mpi_job

    def run(disable: bool) -> float:
        make_app, profile = _APPS["EP"]
        vals = []
        for seed in (3, 11, 19):
            cluster = Cluster(ClusterSpec(n_nodes=16, htt=True), seed=seed)
            if disable:
                for node in cluster.nodes:
                    node.scheduler.misplace_saturation_ns = 1 << 62
            cluster.enable_smi(SmiProfile.LONG, 1000, seed=seed)
            res = run_mpi_job(
                cluster, make_app(NasClass.A), nranks=64, ranks_per_node=4,
                profile=profile,
            )
            vals.append(res.elapsed_s)
        return sum(vals) / len(vals)

    def measure():
        return run(disable=False), run(disable=True)

    with_m, without_m = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "EP.A 64 ranks (ht=1, long SMIs): wake-up misplacement ablation\n"
        f"  with misplacement   : {with_m:.3f} s\n"
        f"  without misplacement: {without_m:.3f} s\n"
    )
    save_artifact("ablation_htt_misplacement.txt", text)
    assert with_m >= without_m


def test_ablation_collective_algorithm(benchmark, save_artifact):
    """Recursive doubling (log p rounds) vs reduce+bcast (2 log p) for a
    latency-bound allreduce at p=16."""
    from repro.machine.profile import COMPUTE_BOUND
    from repro.mpi import Cluster, ClusterSpec, run_mpi_job
    from repro.mpi.collectives import bcast, reduce as mpi_reduce

    def app_rd(rk):
        yield from rk.barrier()
        t0 = rk.task.node.engine.now
        for _ in range(50):
            yield from rk.allreduce(1.0, nbytes=8)
        return (rk.task.node.engine.now - t0) / 1e9

    def app_rb(rk):
        yield from rk.barrier()
        t0 = rk.task.node.engine.now
        for _ in range(50):
            v = yield from mpi_reduce(rk, 1.0, 0, 8)
            yield from bcast(rk, v, 0, 8)
        return (rk.task.node.engine.now - t0) / 1e9

    def measure():
        out = {}
        for name, app in (("recursive-doubling", app_rd), ("reduce+bcast", app_rb)):
            c = Cluster(ClusterSpec(n_nodes=16), seed=1)
            res = run_mpi_job(c, app, nranks=16, profile=COMPUTE_BOUND)
            out[name] = res.elapsed_s
        return out

    res = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "50 × 8-byte allreduce at p=16:\n" + "".join(
        f"  {k:<20} {v:.4f} s\n" for k, v in res.items()
    )
    save_artifact("ablation_collectives.txt", text)
    assert res["recursive-doubling"] < res["reduce+bcast"]
