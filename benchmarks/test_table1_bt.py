"""Table 1 — BT under no/short/long SMIs, 1 and 4 ranks per node.

Regenerates both halves of the paper's Table 1 and asserts its shape
claims: short SMIs are noise-free, long SMIs cost ≈ the duty cycle on one
rank, and the long-SMI % grows with the node count ("The impact of the
long SMIs increases with the number of MPI ranks, for both the four
ranks per node case and the single rank per node case", §III.C).
"""

from repro.harness.common import bench_full, bench_reps
from repro.harness.mpi_tables import build_table, render


def test_table1_bt(benchmark, save_artifact):
    halves = benchmark.pedantic(
        lambda: build_table("BT", quick=not bench_full(), reps=bench_reps(), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("table1_bt.txt", render("BT", halves))
    for rpn, rows in halves.items():
        by = {(r.cls, r.row): r for r in rows}
        for r in rows:
            if r.smm.get(0) is None:
                continue
            # short SMIs: within ±2.5 % or ±0.1 s of base (tiny cells see
            # single-SMI quantization, as the paper's own ±5/13 % cells do)
            assert abs(r.pct(1)) < 2.5 or abs(r.delta(1)) < 0.1, (
                rpn, r.cls, r.row, r.pct(1),
            )
            # long SMIs always cost something
            assert r.pct(2) > 5.0, (rpn, r.cls, r.row, r.pct(2))
        # growth with node count within each class present
        for cls in {r.cls for r in rows}:
            p1 = by[(cls, 1)].pct(2)
            p16 = by[(cls, 16)].pct(2)
            assert p16 > p1, (rpn, cls, p1, p16)
