"""Table 2 — EP under no/short/long SMIs.

The paper's surprise: EP is embarrassingly parallel, yet the long-SMI %
still grows as nodes scale (completion is a max over independently
perturbed ranks).  Single-rank base times must match the paper exactly —
they are the calibration anchors, so this doubles as a calibration
regression bench.
"""

import pytest

from repro.harness.common import bench_full, bench_reps
from repro.harness.mpi_tables import build_table, render


def test_table2_ep(benchmark, save_artifact):
    halves = benchmark.pedantic(
        lambda: build_table("EP", quick=not bench_full(), reps=bench_reps(), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("table2_ep.txt", render("EP", halves))
    rows1 = {(r.cls, r.row): r for r in halves[1]}
    for (cls, row), r in rows1.items():
        # base column: 1-rank-per-node cells track the paper's within 5 %
        if r.paper is not None:
            assert r.smm[0] == pytest.approx(r.paper[0], rel=0.05), (cls, row)
        assert abs(r.pct(1)) < 2.5 or abs(r.delta(1)) < 0.1
        assert 8.0 < r.pct(2) < 80.0
    for cls in {c for c, _ in rows1}:
        assert rows1[(cls, 16)].pct(2) > rows1[(cls, 1)].pct(2)
    # 4 ranks/node row 16 = 64 ranks: the table's largest perturbation
    rows4 = {(r.cls, r.row): r for r in halves[4]}
    for cls in {c for c, _ in rows4}:
        assert rows4[(cls, 16)].pct(2) > rows4[(cls, 1)].pct(2)
