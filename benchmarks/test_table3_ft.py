"""Table 3 — FT under no/short/long SMIs.

FT's all-to-all makes it the communication-heaviest benchmark.  The bench
verifies the paper's layout (class C blank below 4 ranks), the short-SMI
null result, and the significant long-SMI impact at scale.
"""

from repro.apps.nas.params import NasClass
from repro.harness.common import bench_full, bench_reps
from repro.harness.mpi_tables import build_table, render


def test_table3_ft(benchmark, save_artifact):
    full = bench_full()
    halves = benchmark.pedantic(
        lambda: build_table("FT", quick=not full, reps=bench_reps(), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("table3_ft.txt", render("FT", halves))
    if full:
        # the paper's blank cells reproduce: FT-C rows 1–2 at 1 rank/node
        by = {(r.cls, r.row): r for r in halves[1]}
        assert by[(NasClass.C.value, 1)].smm[0] is None
        assert by[(NasClass.C.value, 2)].smm[0] is None
        assert by[(NasClass.C.value, 4)].smm[0] is not None
    for rpn, rows in halves.items():
        for r in rows:
            if r.smm.get(0) is None:
                continue
            assert abs(r.pct(1)) < 2.5 or abs(r.delta(1)) < 0.1, (
                rpn, r.cls, r.row, r.pct(1),
            )
            assert r.pct(2) > 4.0
        by = {(r.cls, r.row): r for r in rows}
        for cls in {r.cls for r in rows}:
            if by[(cls, 1)].smm.get(0) is None:
                continue
            assert by[(cls, 16)].pct(2) > by[(cls, 1)].pct(2) * 0.9
