"""Figure 1 — the Convolve experiments.

Left panels: execution time vs SMI interval (long SMIs), one series per
logical-CPU configuration, for CacheUnfriendly (top) and CacheFriendly
(bottom).  Right panels: time vs CPU count at the fixed 50 ms interval,
three runs each (the paper discusses the run-to-run variance there).

Shape assertions: minimal impact above ~600 ms, dramatic below; the
CU and CF configurations both show near-linear scaling to 4 CPUs and
minimal HTT benefit beyond.
"""

from repro.harness.common import bench_full
from repro.harness.figure1 import build_figure1, render_figure1


def test_figure1_convolve(benchmark, save_artifact):
    data = benchmark.pedantic(
        lambda: build_figure1(quick=not bench_full(), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("figure1_convolve.txt", render_figure1(data))
    save_artifact("figure1_convolve.csv", render_figure1(data, csv=True))
    for name in ("CacheUnfriendly", "CacheFriendly"):
        baselines = data.baselines[name]
        for series in data.left[name]:
            k = int(series.label.replace("cpu", ""))
            base = baselines[k]
            by_x = dict(series.points)
            # knee: ≥1200 ms intervals within 12 % of base; 50 ms ≥ 2.5×
            slow_end = min(x for x in by_x if x >= 1200)
            assert by_x[slow_end] / base < 1.15, (name, k)
            assert by_x[50] / base > 2.5, (name, k)
            # impact monotone in frequency (±5 %: single-SMI phase
            # quantization at the sparse end of the sweep)
            xs = sorted(by_x)
            ys = [by_x[x] for x in xs]
            assert all(a >= b * 0.95 for a, b in zip(ys, ys[1:])), (name, k)
        # scaling: 1→4 CPUs near-linear; 4→8 (HTT) minimal
        assert 3.0 < baselines[1] / baselines[4] < 5.5, name
        assert 0.95 < baselines[4] / baselines[8] < 1.35, name
